package machine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p = 0")
		}
	}()
	New(0, DefaultParams())
}

func TestComputeAdvancesClock(t *testing.T) {
	m := New(1, Params{Ts: 10, Tw: 1})
	res := m.Run(func(p *Proc) {
		p.Compute(5)
		p.Compute(2.5)
	})
	if res.Makespan != 7.5 {
		t.Fatalf("makespan = %g, want 7.5", res.Makespan)
	}
}

func TestSendRecvCost(t *testing.T) {
	// One transfer of m words costs ts + m·tw on both ends; the receiver
	// additionally waits for the sender's departure time.
	m := New(2, Params{Ts: 100, Tw: 2})
	res := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(50)
			p.Send(1, "x", 10, 1)
		} else {
			v := p.Recv(0, 1)
			if v != "x" {
				t.Errorf("received %v, want x", v)
			}
		}
	})
	// Sender: 50 + 120 = 170. Receiver: max(0, 50) + 120 = 170.
	if res.Clocks[0] != 170 || res.Clocks[1] != 170 {
		t.Fatalf("clocks = %v, want [170 170]", res.Clocks)
	}
}

func TestRecvWaitsForLateSender(t *testing.T) {
	m := New(2, Params{Ts: 10, Tw: 1})
	res := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(1000) // late sender
			p.Send(1, nil, 1, 1)
		} else {
			p.Recv(0, 1)
		}
	})
	if res.Clocks[1] != 1011 {
		t.Fatalf("receiver clock = %g, want 1011", res.Clocks[1])
	}
}

func TestEarlySenderDoesNotWaitForReceiver(t *testing.T) {
	// The model has no synchronous handshake: the sender is occupied for
	// ts + m·tw from its own clock.
	m := New(2, Params{Ts: 10, Tw: 1})
	res := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, nil, 5, 1)
		} else {
			p.Compute(500)
			p.Recv(0, 1)
		}
	})
	if res.Clocks[0] != 15 {
		t.Fatalf("sender clock = %g, want 15", res.Clocks[0])
	}
	if res.Clocks[1] != 515 {
		t.Fatalf("receiver clock = %g, want 515", res.Clocks[1])
	}
}

func TestSendRecvExchangeSymmetricCost(t *testing.T) {
	// A bidirectional exchange costs ts + m·tw once on both ends, from
	// the later of the two clocks.
	m := New(2, Params{Ts: 100, Tw: 1})
	res := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(30)
		} else {
			p.Compute(70)
		}
		got := p.SendRecv(1-p.Rank(), p.Rank(), 8, 3)
		if got != 1-p.Rank() {
			t.Errorf("proc %d exchanged value %v, want %d", p.Rank(), got, 1-p.Rank())
		}
	})
	// Both: max(30, 70) + 100 + 8 = 178.
	if res.Clocks[0] != 178 || res.Clocks[1] != 178 {
		t.Fatalf("clocks = %v, want [178 178]", res.Clocks)
	}
}

func TestSendRecvUsesMaxWords(t *testing.T) {
	m := New(2, Params{Ts: 10, Tw: 1})
	res := m.Run(func(p *Proc) {
		words := 3
		if p.Rank() == 1 {
			words = 9
		}
		p.SendRecv(1-p.Rank(), nil, words, 1)
	})
	if res.Clocks[0] != 19 || res.Clocks[1] != 19 {
		t.Fatalf("clocks = %v, want [19 19]", res.Clocks)
	}
}

func TestMakespanIsMaxClock(t *testing.T) {
	m := New(4, Params{Ts: 1, Tw: 1})
	res := m.Run(func(p *Proc) {
		p.Compute(float64(p.Rank()) * 10)
	})
	if res.Makespan != 30 {
		t.Fatalf("makespan = %g, want 30", res.Makespan)
	}
	if len(res.Clocks) != 4 {
		t.Fatalf("clocks = %v", res.Clocks)
	}
}

func TestMessagesCounted(t *testing.T) {
	m := New(2, Params{})
	res := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, nil, 1, 1)
			p.Send(1, nil, 1, 1)
		} else {
			p.Recv(0, 1)
			p.Recv(0, 1)
		}
	})
	if res.Messages != 2 {
		t.Fatalf("messages = %d, want 2", res.Messages)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	m := New(2, Params{})
	m.Timeout = time.Second
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tag mismatch")
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, nil, 1, 7)
		} else {
			p.Recv(0, 8)
		}
	})
}

func TestDeadlockDetected(t *testing.T) {
	m := New(2, Params{})
	m.Timeout = 100 * time.Millisecond
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(e.(string), "deadlock") {
			t.Fatalf("unexpected panic: %v", e)
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 1 {
			p.Recv(0, 1) // nobody sends
		}
	})
}

func TestBodyPanicIdentifiesProcessor(t *testing.T) {
	m := New(3, Params{})
	defer func() {
		e := recover()
		if e == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(e.(string), "processor 2") {
			t.Fatalf("panic does not identify processor: %v", e)
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
	})
}

func TestSendToSelfPanics(t *testing.T) {
	m := New(2, Params{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-send")
		}
	}()
	m.Run(func(p *Proc) {
		p.Send(p.Rank(), nil, 1, 1)
	})
}

func TestNextTagSynchronized(t *testing.T) {
	m := New(4, Params{})
	tags := make([]int, 4)
	m.Run(func(p *Proc) {
		p.NextTag()
		p.NextTag()
		tags[p.Rank()] = p.NextTag()
	})
	for r, tg := range tags {
		if tg != 3 {
			t.Fatalf("proc %d tag = %d, want 3", r, tg)
		}
	}
}

func TestAdvanceToNeverMovesBackwards(t *testing.T) {
	m := New(1, Params{})
	m.Run(func(p *Proc) {
		p.Compute(10)
		p.AdvanceTo(5)
		if p.Clock() != 10 {
			t.Errorf("clock = %g, want 10", p.Clock())
		}
		p.AdvanceTo(20)
		if p.Clock() != 20 {
			t.Errorf("clock = %g, want 20", p.Clock())
		}
	})
}

func TestMachineReusable(t *testing.T) {
	m := New(2, Params{Ts: 1, Tw: 1})
	for i := 0; i < 3; i++ {
		res := m.Run(func(p *Proc) {
			if p.Rank() == 0 {
				p.Send(1, i, 1, 1)
			} else {
				got := p.Recv(0, 1)
				if got != i {
					t.Errorf("run %d: got %v", i, got)
				}
			}
		})
		if res.Makespan != 2 {
			t.Fatalf("run %d makespan = %g, want 2", i, res.Makespan)
		}
	}
}

func TestQuickClockMonotonic(t *testing.T) {
	// Property: whatever the interleaving of computes and exchanges, no
	// processor's clock ever decreases, and makespan ≥ every per-step time.
	f := func(steps []uint8) bool {
		if len(steps) > 20 {
			steps = steps[:20]
		}
		m := New(2, Params{Ts: 3, Tw: 1})
		ok := true
		m.Run(func(p *Proc) {
			last := 0.0
			for _, s := range steps {
				if s%2 == 0 {
					p.Compute(float64(s % 7))
				} else {
					p.SendRecv(1-p.Rank(), nil, int(s%5), int(s))
				}
				if p.Clock() < last || math.IsNaN(p.Clock()) {
					ok = false
				}
				last = p.Clock()
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTracerRecordsEvents(t *testing.T) {
	m := New(2, Params{Ts: 5, Tw: 1})
	tr := NewTracer()
	m.SetTracer(tr)
	defer m.SetTracer(nil)
	m.Run(func(p *Proc) {
		p.Mark("start")
		p.Compute(3)
		if p.Rank() == 0 {
			p.Send(1, nil, 2, 1)
		} else {
			p.Recv(0, 1)
		}
	})
	evs := tr.Events()
	var kinds []EventKind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	counts := map[EventKind]int{}
	for _, k := range kinds {
		counts[k]++
	}
	if counts[EvMark] != 2 || counts[EvCompute] != 2 || counts[EvSend] != 1 || counts[EvRecv] != 1 {
		t.Fatalf("event counts = %v", counts)
	}
	// Events are sorted by start time.
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatalf("events not sorted: %v", evs)
		}
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestTimelineRenders(t *testing.T) {
	evs := []Event{
		{Kind: EvCompute, Proc: 0, Peer: -1, Start: 0, End: 10},
		{Kind: EvExchange, Proc: 1, Peer: 0, Start: 10, End: 20},
	}
	out := Timeline(evs, 2, 40)
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Fatalf("timeline missing processor rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "x") {
		t.Fatalf("timeline missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Fatalf("timeline missing legend:\n%s", out)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvCompute: "compute", EvSend: "send", EvRecv: "recv",
		EvExchange: "exchange", EvMark: "mark",
	} {
		if k.String() != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if got := EventKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}
