package machine

import "testing"

func TestLinkCostOverridesParams(t *testing.T) {
	m := New(3, Params{Ts: 100, Tw: 1})
	m.LinkCost = func(src, dst int) Params {
		if src == 0 && dst == 1 || src == 1 && dst == 0 {
			return Params{Ts: 1, Tw: 1}
		}
		return Params{Ts: 1000, Tw: 2}
	}
	res := m.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, nil, 10, 1) // cheap: 1 + 10 = 11
			p.Send(2, nil, 10, 2) // expensive: 1000 + 20 = 1020
		case 1:
			p.Recv(0, 1)
		case 2:
			p.Recv(0, 2)
		}
	})
	if res.Clocks[1] != 11 {
		t.Fatalf("cheap-link receiver clock = %g, want 11", res.Clocks[1])
	}
	// Expensive send departs at 11 (after the cheap one).
	if res.Clocks[2] != 11+1020 {
		t.Fatalf("expensive-link receiver clock = %g, want 1031", res.Clocks[2])
	}
}

func TestLinkCostAppliesToExchange(t *testing.T) {
	m := New(2, Params{Ts: 100, Tw: 1})
	m.LinkCost = func(src, dst int) Params { return Params{Ts: 7, Tw: 3} }
	res := m.Run(func(p *Proc) {
		p.SendRecv(1-p.Rank(), nil, 4, 1)
	})
	// 7 + 4·3 = 19 on both ends.
	if res.Clocks[0] != 19 || res.Clocks[1] != 19 {
		t.Fatalf("clocks = %v, want [19 19]", res.Clocks)
	}
}

func TestNilLinkCostUsesParams(t *testing.T) {
	m := New(2, Params{Ts: 5, Tw: 1})
	res := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, nil, 5, 1)
		} else {
			p.Recv(0, 1)
		}
	})
	if res.Clocks[1] != 10 {
		t.Fatalf("clock = %g, want 10", res.Clocks[1])
	}
}
