// Package machine provides the virtual parallel machine on which the
// collective operations run: a fully connected system of p processors in
// which any pair can exchange blocks of m words in time ts + m·tw, and one
// computation operation costs one time unit — exactly the machine and
// implementation model of §4.1 of Gorlatch, Wedler and Lengauer (IPPS'99).
//
// The machine substitutes for the paper's MPI/Parsytec testbed: Go has no
// mature MPI bindings, so processors are goroutines, point-to-point
// messages are channel rendezvous, and *time* is virtual — every processor
// carries a clock advanced by the cost model, so measured run times are
// deterministic and directly comparable with the paper's estimates, while
// the data flow is executed for real (values actually travel between
// goroutines, so correctness is exercised, not assumed).
package machine

import (
	"fmt"
	"sync"
	"time"
)

// Params are the machine parameters of the cost model: Ts is the start-up
// time of a transfer, Tw the per-word transfer time, both in units of one
// computation operation.
type Params struct {
	// Ts is the message start-up time.
	Ts float64
	// Tw is the per-word transfer time.
	Tw float64
}

// DefaultParams resemble the relation between start-up and per-word cost
// on the paper's Parsytec network: start-up dominates by a few orders of
// magnitude.
func DefaultParams() Params { return Params{Ts: 1000, Tw: 1} }

// Machine is a virtual fully connected parallel machine with P processors.
// Create one with New, then call Run to execute an SPMD program.
type Machine struct {
	// P is the number of processors.
	P int
	// Params are the communication cost parameters.
	Params Params
	// Timeout bounds how long a processor may block in Recv before the
	// run is aborted with a deadlock diagnosis. Zero means no bound.
	Timeout time.Duration
	// LinkCost, when non-nil, overrides Params per directed link — the
	// hook for non-uniform machines such as clusters of SMPs, where
	// intra-node links are much cheaper than inter-node ones. The
	// function must be symmetric for SendRecv to stay consistent.
	LinkCost func(src, dst int) Params
	// MailboxCap overrides the buffer depth per directed processor pair.
	// Zero means the default (4), which is enough for every collective in
	// package coll; fault-injecting decorators that put retransmissions
	// and acknowledgements on the same links want more headroom.
	MailboxCap int

	tracer *Tracer
	// procs is the processor table of the run in progress. A Machine
	// runs one program at a time.
	procs []*Proc
}

// New creates a machine with p processors and the given cost parameters.
func New(p int, params Params) *Machine {
	if p < 1 {
		panic(fmt.Sprintf("machine: need at least 1 processor, got %d", p))
	}
	return &Machine{P: p, Params: params, Timeout: 30 * time.Second}
}

// SetTracer installs an event tracer; pass nil to disable tracing.
func (m *Machine) SetTracer(t *Tracer) { m.tracer = t }

// packet is one in-flight message.
type packet struct {
	value any
	words int
	// depart is the sender's clock when the transfer began.
	depart float64
	tag    int
}

// Proc is one virtual processor, handed to the SPMD body by Run. Its
// methods must only be called from the goroutine running that body.
type Proc struct {
	rank  int
	m     *Machine
	clock float64
	// in[src] carries messages from processor src to this processor.
	in []chan packet
	// sent counts messages sent, recvd messages received; sentWords and
	// ops accumulate communication volume and charged computation.
	sent, recvd int
	sentWords   int
	ops         float64
	tagseq      int
}

// NextTag returns a fresh message tag. Because the processors execute the
// same SPMD program, per-processor counters stay synchronized, giving each
// collective operation a distinct tag without global coordination.
func (p *Proc) NextTag() int {
	p.tagseq++
	return p.tagseq
}

// Rank is this processor's rank, 0 ≤ Rank < P.
func (p *Proc) Rank() int { return p.rank }

// P is the machine size.
func (p *Proc) P() int { return p.m.P }

// Clock is the processor's current virtual time.
func (p *Proc) Clock() float64 { return p.clock }

// AdvanceTo moves the clock forward to t; it never moves backwards.
func (p *Proc) AdvanceTo(t float64) {
	if t > p.clock {
		p.clock = t
	}
}

// Compute charges n time units of local computation (one unit per
// elementary operation, per §4.1).
func (p *Proc) Compute(n float64) {
	if n < 0 {
		panic("machine: negative computation charge")
	}
	start := p.clock
	p.clock += n
	p.ops += n
	p.m.trace(Event{Kind: EvCompute, Proc: p.rank, Peer: -1, Start: start, End: p.clock})
}

// Send ships value (words machine words) to processor dst. The sender is
// occupied for ts + words·tw, per the model's bidirectional-link cost.
func (p *Proc) Send(dst int, value any, words int, tag int) {
	if dst == p.rank {
		panic(fmt.Sprintf("machine: proc %d sending to itself", p.rank))
	}
	p.checkRank(dst)
	depart := p.clock
	cost := p.m.linkParams(p.rank, dst)
	p.clock += cost.Ts + float64(words)*cost.Tw
	p.sent++
	p.sentWords += words
	p.m.trace(Event{Kind: EvSend, Proc: p.rank, Peer: dst, Words: words, Start: depart, End: p.clock, Tag: tag})
	p.m.procs[dst].in[p.rank] <- packet{value: value, words: words, depart: depart, tag: tag}
}

// Recv receives the next message from processor src, blocking until it
// arrives. The receiver's clock advances to
// max(receiver clock, sender clock at departure) + ts + words·tw.
func (p *Proc) Recv(src int, tag int) any {
	p.checkRank(src)
	var pkt packet
	if p.m.Timeout > 0 {
		select {
		case pkt = <-p.in[src]:
		case <-time.After(p.m.Timeout):
			panic(fmt.Sprintf("machine: proc %d deadlocked waiting for a message from proc %d (tag %d)", p.rank, src, tag))
		}
	} else {
		pkt = <-p.in[src]
	}
	if pkt.tag != tag {
		panic(fmt.Sprintf("machine: proc %d expected tag %d from proc %d, got %d", p.rank, tag, src, pkt.tag))
	}
	start := p.clock
	if pkt.depart > start {
		start = pkt.depart
	}
	cost := p.m.linkParams(src, p.rank)
	p.clock = start + cost.Ts + float64(pkt.words)*cost.Tw
	p.recvd++
	p.m.trace(Event{Kind: EvRecv, Proc: p.rank, Peer: src, Words: pkt.words, Start: start, End: p.clock, Tag: tag})
	return pkt.value
}

// TrySend is the non-blocking variant of Send: it ships the value if the
// destination mailbox has room and reports whether it did. Nothing is
// charged on failure. Fault-injecting decorators build their retry loops
// on it so a full mailbox never wedges a processor that still has
// protocol work to do.
func (p *Proc) TrySend(dst int, value any, words int, tag int) bool {
	if dst == p.rank {
		panic(fmt.Sprintf("machine: proc %d sending to itself", p.rank))
	}
	p.checkRank(dst)
	depart := p.clock
	select {
	case p.m.procs[dst].in[p.rank] <- packet{value: value, words: words, depart: depart, tag: tag}:
	default:
		return false
	}
	cost := p.m.linkParams(p.rank, dst)
	p.clock += cost.Ts + float64(words)*cost.Tw
	p.sent++
	p.sentWords += words
	p.m.trace(Event{Kind: EvSend, Proc: p.rank, Peer: dst, Words: words, Start: depart, End: p.clock, Tag: tag})
	return true
}

// RecvAny receives the next message from processor src regardless of its
// tag, returning the value and the tag it was sent under — the raw link
// layer beneath the tag discipline, for fault-injecting decorators that
// multiplex their own protocol over one wire tag. Clock accounting is
// identical to Recv's.
func (p *Proc) RecvAny(src int) (any, int) {
	p.checkRank(src)
	var pkt packet
	if p.m.Timeout > 0 {
		select {
		case pkt = <-p.in[src]:
		case <-time.After(p.m.Timeout):
			panic(fmt.Sprintf("machine: proc %d timed out after %v waiting for any message from proc %d", p.rank, p.m.Timeout, src))
		}
	} else {
		pkt = <-p.in[src]
	}
	return p.admit(pkt, src), pkt.tag
}

// TryRecvAny is the non-blocking variant of RecvAny: it dequeues an
// already-arrived message from src, if there is one.
func (p *Proc) TryRecvAny(src int) (any, int, bool) {
	p.checkRank(src)
	select {
	case pkt := <-p.in[src]:
		return p.admit(pkt, src), pkt.tag, true
	default:
		return nil, 0, false
	}
}

// admit applies Recv's clock accounting to a dequeued packet.
func (p *Proc) admit(pkt packet, src int) any {
	start := p.clock
	if pkt.depart > start {
		start = pkt.depart
	}
	cost := p.m.linkParams(src, p.rank)
	p.clock = start + cost.Ts + float64(pkt.words)*cost.Tw
	p.recvd++
	p.m.trace(Event{Kind: EvRecv, Proc: p.rank, Peer: src, Words: pkt.words, Start: start, End: p.clock, Tag: pkt.tag})
	return pkt.value
}

// SendRecv performs the simultaneous bidirectional exchange of §4.1: this
// processor and partner swap values over their bidirectional link. Both
// clocks advance to max(clock_a, clock_b) + ts + max(words)·tw — the two
// transfers overlap, which is what makes the butterfly phase cost
// ts + m·tw rather than twice that.
func (p *Proc) SendRecv(partner int, value any, words int, tag int) any {
	if partner == p.rank {
		panic(fmt.Sprintf("machine: proc %d exchanging with itself", p.rank))
	}
	p.checkRank(partner)
	depart := p.clock
	p.sent++
	p.sentWords += words
	p.m.procs[partner].in[p.rank] <- packet{value: value, words: words, depart: depart, tag: tag}
	var pkt packet
	if p.m.Timeout > 0 {
		select {
		case pkt = <-p.in[partner]:
		case <-time.After(p.m.Timeout):
			panic(fmt.Sprintf("machine: proc %d deadlocked in exchange with proc %d (tag %d)", p.rank, partner, tag))
		}
	} else {
		pkt = <-p.in[partner]
	}
	if pkt.tag != tag {
		panic(fmt.Sprintf("machine: proc %d expected tag %d from proc %d, got %d", p.rank, tag, partner, pkt.tag))
	}
	p.recvd++
	start := p.clock
	if pkt.depart > start {
		start = pkt.depart
	}
	w := words
	if pkt.words > w {
		w = pkt.words
	}
	cost := p.m.linkParams(p.rank, partner)
	p.clock = start + cost.Ts + float64(w)*cost.Tw
	p.m.trace(Event{Kind: EvExchange, Proc: p.rank, Peer: partner, Words: w, Start: start, End: p.clock, Tag: tag})
	return pkt.value
}

func (p *Proc) checkRank(r int) {
	if r < 0 || r >= p.m.P {
		panic(fmt.Sprintf("machine: rank %d out of range [0,%d)", r, p.m.P))
	}
}

// Result summarises one run of an SPMD program.
type Result struct {
	// Makespan is the maximum finishing clock over all processors —
	// the run time of the program under the cost model.
	Makespan float64
	// Clocks are the per-processor finishing clocks.
	Clocks []float64
	// Messages is the total number of point-to-point transfers.
	Messages int
	// Words is the total number of words moved over the links — the
	// run's communication volume.
	Words int
	// Ops is the total computation charged across all processors — the
	// run's work. The paper's "cost-optimal" claims (§3.4) are claims
	// about Ops, not Makespan.
	Ops float64
	// Wall is the real (host) execution time of the run.
	Wall time.Duration
}

// Run executes body as an SPMD program: one goroutine per processor, all
// starting at clock 0. It returns when every processor's body has
// finished. A panic in any processor's body aborts the run and is
// re-raised on the caller's goroutine with the processor identified.
func (m *Machine) Run(body func(p *Proc)) Result {
	m.procs = make([]*Proc, m.P)
	for r := 0; r < m.P; r++ {
		in := make([]chan packet, m.P)
		cap := m.MailboxCap
		if cap <= 0 {
			// Capacity 4 is plenty: the collectives never have more
			// than one outstanding message per directed pair.
			cap = 4
		}
		for s := 0; s < m.P; s++ {
			if s != r {
				in[s] = make(chan packet, cap)
			}
		}
		m.procs[r] = &Proc{rank: r, m: m, in: in}
	}
	start := time.Now()
	var wg sync.WaitGroup
	panics := make([]any, m.P)
	for r := 0; r < m.P; r++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					panics[p.rank] = e
				}
			}()
			body(p)
		}(m.procs[r])
	}
	wg.Wait()
	wall := time.Since(start)
	for r, e := range panics {
		if e != nil {
			panic(fmt.Sprintf("machine: processor %d failed: %v", r, e))
		}
	}
	res := Result{Clocks: make([]float64, m.P), Wall: wall}
	for r, p := range m.procs {
		res.Clocks[r] = p.clock
		res.Messages += p.sent
		res.Words += p.sentWords
		res.Ops += p.ops
		if p.clock > res.Makespan {
			res.Makespan = p.clock
		}
	}
	m.procs = nil
	return res
}

// linkParams resolves the cost parameters of the (src, dst) link.
func (m *Machine) linkParams(src, dst int) Params {
	if m.LinkCost != nil {
		return m.LinkCost(src, dst)
	}
	return m.Params
}

func (m *Machine) trace(e Event) {
	if m.tracer != nil {
		m.tracer.record(e)
	}
}
