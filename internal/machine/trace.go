package machine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EventKind classifies trace events.
type EventKind int

// The event kinds recorded by a Tracer.
const (
	// EvCompute is a local computation interval.
	EvCompute EventKind = iota
	// EvSend is the sending half of a one-directional transfer.
	EvSend
	// EvRecv is the receiving half of a one-directional transfer.
	EvRecv
	// EvExchange is a simultaneous bidirectional exchange (SendRecv).
	EvExchange
	// EvMark is a user annotation (phase boundaries etc.).
	EvMark
)

func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvExchange:
		return "exchange"
	case EvMark:
		return "mark"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one record in an execution trace.
type Event struct {
	Kind  EventKind
	Proc  int
	Peer  int // -1 when not a communication
	Words int
	Start float64
	End   float64
	Tag   int
	Label string // for EvMark
}

// Tracer collects events from a run. It is safe for concurrent use by the
// processor goroutines.
type Tracer struct {
	mu     sync.Mutex
	events []Event
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time, then
// by processor.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// Reset discards all recorded events.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// Mark records a user annotation on a processor's timeline, e.g. the
// boundary between program stages.
func (p *Proc) Mark(label string) {
	p.m.trace(Event{Kind: EvMark, Proc: p.rank, Peer: -1, Start: p.clock, End: p.clock, Label: label})
}

// Timeline renders the trace as a per-processor text timeline, a textual
// analogue of the run-time pictures in Figures 1 and 3 of the paper. width
// is the number of character columns the time axis is scaled to.
func Timeline(events []Event, procs int, width int) string {
	if width < 10 {
		width = 10
	}
	var tmax float64
	for _, e := range events {
		if e.End > tmax {
			tmax = e.End
		}
	}
	if tmax == 0 {
		tmax = 1
	}
	col := func(t float64) int {
		c := int(t / tmax * float64(width-1))
		if c >= width {
			c = width - 1
		}
		return c
	}
	rows := make([][]byte, procs)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	fill := func(proc int, a, b float64, ch byte) {
		if proc < 0 || proc >= procs {
			return
		}
		lo, hi := col(a), col(b)
		for c := lo; c <= hi && c < width; c++ {
			rows[proc][c] = ch
		}
	}
	for _, e := range events {
		switch e.Kind {
		case EvCompute:
			fill(e.Proc, e.Start, e.End, '#')
		case EvSend:
			fill(e.Proc, e.Start, e.End, '>')
		case EvRecv:
			fill(e.Proc, e.Start, e.End, '<')
		case EvExchange:
			fill(e.Proc, e.Start, e.End, 'x')
		case EvMark:
			fill(e.Proc, e.Start, e.Start, '|')
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 %s %.0f\n", strings.Repeat(" ", width-8), tmax)
	for i, r := range rows {
		fmt.Fprintf(&b, "P%-3d %s\n", i, string(r))
	}
	b.WriteString("legend: # compute  > send  < recv  x exchange  | mark\n")
	return b.String()
}
