package machine

import (
	"strings"
	"testing"
)

func TestAnalyzeUsage(t *testing.T) {
	events := []Event{
		{Kind: EvCompute, Proc: 0, Start: 0, End: 10},
		{Kind: EvSend, Proc: 0, Start: 10, End: 30},
		{Kind: EvRecv, Proc: 1, Start: 5, End: 30},
		{Kind: EvCompute, Proc: 1, Start: 40, End: 45},
	}
	u := Analyze(events, 2)
	if u[0].Compute != 10 || u[0].Comm != 20 || u[0].Idle != 0 || u[0].Finish != 30 {
		t.Fatalf("proc 0 usage = %+v", u[0])
	}
	// Proc 1: comm 25, compute 5, finish 45 → idle 15.
	if u[1].Compute != 5 || u[1].Comm != 25 || u[1].Idle != 15 || u[1].Finish != 45 {
		t.Fatalf("proc 1 usage = %+v", u[1])
	}
}

func TestAnalyzeFromRealRun(t *testing.T) {
	m := New(2, Params{Ts: 10, Tw: 1})
	tr := NewTracer()
	m.SetTracer(tr)
	defer m.SetTracer(nil)
	m.Run(func(p *Proc) {
		p.Compute(5)
		p.SendRecv(1-p.Rank(), nil, 2, 1)
	})
	u := Analyze(tr.Events(), 2)
	for i := range u {
		if u[i].Compute != 5 {
			t.Fatalf("proc %d compute = %g", i, u[i].Compute)
		}
		if u[i].Comm != 12 { // ts + 2·tw
			t.Fatalf("proc %d comm = %g", i, u[i].Comm)
		}
	}
}

func TestStageBreakdown(t *testing.T) {
	events := []Event{
		{Kind: EvMark, Proc: 0, Start: 0, End: 0, Label: "a"},
		{Kind: EvMark, Proc: 1, Start: 0, End: 0, Label: "a"},
		{Kind: EvCompute, Proc: 0, Start: 0, End: 10},
		{Kind: EvCompute, Proc: 1, Start: 0, End: 4},
		{Kind: EvMark, Proc: 0, Start: 10, End: 10, Label: "b"},
		{Kind: EvMark, Proc: 1, Start: 4, End: 4, Label: "b"},
		{Kind: EvCompute, Proc: 0, Start: 10, End: 12},
		{Kind: EvCompute, Proc: 1, Start: 4, End: 20},
	}
	stages := StageBreakdown(events, 2)
	if len(stages) != 2 {
		t.Fatalf("stages = %v", stages)
	}
	if stages[0].Label != "a" || stages[0].Time != 10 {
		t.Fatalf("stage a = %+v", stages[0])
	}
	// Stage b: proc 0 spans 10→12, proc 1 spans 4→20 → max 16.
	if stages[1].Label != "b" || stages[1].Time != 16 {
		t.Fatalf("stage b = %+v", stages[1])
	}
}

func TestStageBreakdownNoMarks(t *testing.T) {
	if got := StageBreakdown([]Event{{Kind: EvCompute, Proc: 0, Start: 0, End: 1}}, 1); got != nil {
		t.Fatalf("got %v", got)
	}
}

func TestStageBreakdownMismatchedMarksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StageBreakdown([]Event{
		{Kind: EvMark, Proc: 0, Start: 0, Label: "a"},
	}, 2)
}

func TestFormatProfile(t *testing.T) {
	u := []Usage{{Compute: 1, Comm: 2, Idle: 3, Finish: 6}}
	s := []StageCost{{Label: "bcast", Time: 4}, {Label: "scan(+)", Time: 2}}
	out := FormatProfile(u, s)
	for _, want := range []string{"P0", "stage breakdown", "bcast", "66.7%", "scan(+)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile missing %q:\n%s", want, out)
		}
	}
}
