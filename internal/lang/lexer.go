// Package lang provides a small textual front-end for the formal
// framework: a lexer and parser for program terms written in the paper's
// notation, e.g.
//
//	bcast ; scan(+) ; reduce(*)
//	map pair ; allreduce(max) ; map pi_1
//
// The parser produces term.Term values ready for the optimizer, the cost
// estimator and the virtual machine. Operators and map functions are
// resolved against a Symbols table pre-loaded with the standard base
// operators and auxiliary functions; comments run from '#' to end of line.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind int

// Token kinds.
const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier such as scan, bcast, pair, max.
	TokIdent
	// TokOp is a symbolic operator: + * - and friends.
	TokOp
	// TokSemi is the composition separator ';'.
	TokSemi
	// TokLParen is '('.
	TokLParen
	// TokRParen is ')'.
	TokRParen
	// TokComma is ','.
	TokComma
	// TokNumber is an unsigned decimal integer literal, as in the offset
	// and counts lists of the sparse collectives: halo(-1,1),
	// allgatherv(2,0,3). A leading sign lexes as a separate TokOp.
	TokNumber
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokOp:
		return "operator"
	case TokSemi:
		return "';'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokNumber:
		return "number"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	// Pos is the 0-based byte offset, Line/Col are 1-based.
	Pos, Line, Col int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Error is a lexing or parsing error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errorf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// symbolic operator characters accepted as TokOp. The colon appears in
// the MPI notation's Program headers (x: input).
const opChars = "+*-/<>=&|^%:"

// Lex tokenizes src. It returns the token stream ending in TokEOF, or a
// positioned error on an unexpected character.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	emit := func(kind TokenKind, text string) {
		toks = append(toks, Token{Kind: kind, Text: text, Pos: i, Line: line, Col: col})
	}
	for i < n {
		c := rune(src[i])
		switch {
		case c == '\n':
			line++
			col = 1
			i++
		case c == ' ' || c == '\t' || c == '\r':
			col++
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == ';':
			emit(TokSemi, ";")
			i++
			col++
		case c == '(':
			emit(TokLParen, "(")
			i++
			col++
		case c == ')':
			emit(TokRParen, ")")
			i++
			col++
		case c == ',':
			emit(TokComma, ",")
			i++
			col++
		case strings.ContainsRune(opChars, c):
			start := i
			startCol := col
			for i < n && strings.ContainsRune(opChars, rune(src[i])) {
				i++
				col++
			}
			toks = append(toks, Token{Kind: TokOp, Text: src[start:i], Pos: start, Line: line, Col: startCol})
		case unicode.IsDigit(c):
			start := i
			startCol := col
			for i < n && unicode.IsDigit(rune(src[i])) {
				i++
				col++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[start:i], Pos: start, Line: line, Col: startCol})
		case isIdentStart(c):
			start := i
			startCol := col
			for i < n && isIdentRune(rune(src[i])) {
				i++
				col++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[start:i], Pos: start, Line: line, Col: startCol})
		default:
			return nil, errorf(line, col, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n, Line: line, Col: col})
	return toks, nil
}
