package lang

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

// examplePaperText is program Example verbatim from §2.1, with op1/op2
// instantiated to the predefined MPI operators.
const examplePaperText = `
Program Example (x: input, v: output);
y = f ( x );
MPI_Scan (y, z, count1, type, MPI_PROD, comm);
MPI_Reduce (z, u, count2, type, MPI_SUM, root, comm);
v = g ( u );
MPI_Bcast (v, count3, type, root, comm);
`

func mpiSyms() *Symbols {
	syms := NewSymbols()
	syms.DefineFn(&term.Fn{Name: "f", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, algebra.Scalar(1))
	}})
	syms.DefineFn(&term.Fn{Name: "g", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Mul.Apply(v, algebra.Scalar(2))
	}})
	return syms
}

func TestParseMPIExampleProgram(t *testing.T) {
	prog, err := ParseMPI(examplePaperText, mpiSyms())
	if err != nil {
		t.Fatal(err)
	}
	want := "map f ; scan(*) ; reduce(+) ; map g ; bcast"
	if got := prog.String(); got != want {
		t.Fatalf("parsed = %q, want %q", got, want)
	}
}

func TestParseMPIWithoutHeader(t *testing.T) {
	prog, err := ParseMPI("MPI_Bcast (v, c, t, root, comm); MPI_Scan (v, w, c, t, MPI_SUM, comm);", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.String(); got != "bcast ; scan(+)" {
		t.Fatalf("parsed = %q", got)
	}
}

func TestParseMPIAllreduce(t *testing.T) {
	prog, err := ParseMPI("MPI_Allreduce (a, b, c, t, MPI_MAX, comm);", nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := term.Stages(prog)
	r, ok := stages[0].(term.Reduce)
	if !ok || !r.All || r.Op != algebra.Max {
		t.Fatalf("parsed = %v", prog)
	}
}

func TestParseMPICustomOperator(t *testing.T) {
	syms := NewSymbols()
	// op1 from the paper, registered by the programmer.
	op1 := algebra.NewBase("op1", func(x, y float64) float64 { return x + y })
	syms.DefineOp(op1)
	prog, err := ParseMPI("MPI_Scan (x, y, c, t, op1, comm);", syms)
	if err != nil {
		t.Fatal(err)
	}
	if s := term.Stages(prog)[0].(term.Scan); s.Op != op1 {
		t.Fatalf("operator not resolved: %v", prog)
	}
}

func TestParseMPIDataflowCheck(t *testing.T) {
	// The reduce consumes y, but the scan produced z.
	src := `
MPI_Scan (x, z, c, t, MPI_SUM, comm);
MPI_Reduce (y, u, c, t, MPI_SUM, root, comm);
`
	_, err := ParseMPI(src, nil)
	if err == nil || !strings.Contains(err.Error(), "dataflow break") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseMPIBcastInPlaceChains(t *testing.T) {
	// Bcast is in-place: v stays the running variable.
	src := `
MPI_Bcast (v, c, t, root, comm);
MPI_Scan (v, w, c, t, MPI_SUM, comm);
MPI_Reduce (w, u, c, t, MPI_PROD, root, comm);
`
	prog, err := ParseMPI(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.String(); got != "bcast ; scan(+) ; reduce(*)" {
		t.Fatalf("parsed = %q", got)
	}
}

func TestParseMPIErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"", "empty program"},
		{"MPI_Scan (x, y, c, t, MPI_SUM);", "6 arguments, got 5"},
		{"MPI_Bcast (v, c, t, root);", "5 arguments, got 4"},
		{"MPI_Reduce (x, y, c, t, NOPE, root, comm);", "unknown reduction operator"},
		{"y = nope ( x );", "unknown local function"},
		{"y + f ( x );", "expected '='"},
		{"MPI_Scan (x; y);", "expected ',' or ')'"},
		{"Program Broken (x", "unterminated Program header"},
		{"MPI_Scan (x, y, c, t, MPI_SUM, comm); y = f ( q );", "dataflow break"},
	}
	syms := mpiSyms()
	for _, c := range cases {
		_, err := ParseMPI(c.src, syms)
		if err == nil {
			t.Errorf("ParseMPI(%q) succeeded, want error with %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseMPI(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

// TestParseMPIAgreesWithCompactNotation: both front-ends produce
// structurally equal terms.
func TestParseMPIAgreesWithCompactNotation(t *testing.T) {
	a, err := ParseMPI("MPI_Bcast (v, c, t, r, comm); MPI_Scan (v, w, c, t, MPI_SUM, comm);", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("bcast ; scan(+)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !term.EqualTerms(a, b) {
		t.Fatalf("front-ends disagree: %v vs %v", a, b)
	}
}
