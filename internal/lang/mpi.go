package lang

import (
	"repro/internal/algebra"
	"repro/internal/term"
)

// ParseMPI parses a program in the paper's §2.1 MPI-like notation — the
// concrete syntax of program Example — into a term:
//
//	Program Example (x: input, v: output);
//	y = f ( x );
//	MPI_Scan (y, z, count1, type, op1, comm);
//	MPI_Reduce (z, u, count2, type, op2, root, comm);
//	v = g ( u );
//	MPI_Bcast (v, count3, type, root, comm);
//
// Supported statements:
//
//	out = f ( in );                                   local stage map f
//	MPI_Scan (in, out, count, type, op, comm);        scan(op)
//	MPI_Reduce (in, out, count, type, op, root, comm);   reduce(op)
//	MPI_Allreduce (in, out, count, type, op, comm);   allreduce(op)
//	MPI_Bcast (buf, count, type, root, comm);         bcast
//
// The Program header line is optional. count, type, root and comm
// arguments are accepted and ignored, as §2.2 does ("we omit the size and
// the type of the data … we can omit the name of the MPI communicator").
// Operators resolve through syms (MPI_SUM, MPI_PROD, MPI_MAX, MPI_MIN are
// pre-mapped; further names fall back to the symbol table, so op1 can be
// registered by the caller), and local function names resolve through the
// symbol table's functions.
//
// Dataflow is checked: each statement must consume the variable the
// previous statement produced, catching the transcription errors the
// positional MPI argument lists invite.
func ParseMPI(src string, syms *Symbols) (term.Term, error) {
	if syms == nil {
		syms = NewSymbols()
	}
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &mpiParser{parser: parser{toks: toks, syms: syms}}
	return p.program()
}

// mpiOps maps the predefined MPI reduction operators.
var mpiOps = map[string]*algebra.Op{
	"MPI_SUM":  algebra.Add,
	"MPI_PROD": algebra.Mul,
	"MPI_MAX":  algebra.Max,
	"MPI_MIN":  algebra.Min,
}

type mpiParser struct {
	parser
	// current is the variable holding the running value; "" before the
	// first statement.
	current string
}

func (p *mpiParser) program() (term.Term, error) {
	// Optional header: Program NAME ( … ) ;
	if t := p.peek(); t.Kind == TokIdent && t.Text == "Program" {
		if err := p.skipHeader(); err != nil {
			return nil, err
		}
	}
	var stages term.Seq
	for p.peek().Kind != TokEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		stages = append(stages, st)
		if p.peek().Kind == TokSemi {
			p.next()
		}
	}
	if len(stages) == 0 {
		t := p.peek()
		return nil, errorf(t.Line, t.Col, "empty program")
	}
	return stages, nil
}

func (p *mpiParser) skipHeader() error {
	p.next() // Program
	if _, err := p.expect(TokIdent); err != nil {
		return err // program name
	}
	if p.peek().Kind == TokLParen {
		depth := 0
		for {
			t := p.next()
			switch t.Kind {
			case TokLParen:
				depth++
			case TokRParen:
				depth--
				if depth == 0 {
					goto done
				}
			case TokEOF:
				return errorf(t.Line, t.Col, "unterminated Program header")
			}
		}
	}
done:
	if p.peek().Kind == TokSemi {
		p.next()
	}
	return nil
}

func (p *mpiParser) statement() (term.Term, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	switch name.Text {
	case "MPI_Scan":
		in, out, op, err := p.mpiArgs(name, 6, 4)
		if err != nil {
			return nil, err
		}
		if err := p.chain(name, in, out); err != nil {
			return nil, err
		}
		return term.Scan{Op: op}, nil
	case "MPI_Reduce":
		in, out, op, err := p.mpiArgs(name, 7, 4)
		if err != nil {
			return nil, err
		}
		if err := p.chain(name, in, out); err != nil {
			return nil, err
		}
		return term.Reduce{Op: op}, nil
	case "MPI_Allreduce":
		in, out, op, err := p.mpiArgs(name, 6, 4)
		if err != nil {
			return nil, err
		}
		if err := p.chain(name, in, out); err != nil {
			return nil, err
		}
		return term.Reduce{Op: op, All: true}, nil
	case "MPI_Bcast":
		args, err := p.argList(name)
		if err != nil {
			return nil, err
		}
		if len(args) != 5 {
			return nil, errorf(name.Line, name.Col, "MPI_Bcast takes 5 arguments, got %d", len(args))
		}
		// Bcast is in-place: the buffer is both input and output.
		if err := p.chain(name, args[0], args[0]); err != nil {
			return nil, err
		}
		return term.Bcast{}, nil
	default:
		// Assignment: out = f ( in )
		return p.assignment(name)
	}
}

// mpiArgs parses the argument list of a collective with the given arity
// and resolves the operator at opIdx: (in, out, …, op, …).
func (p *mpiParser) mpiArgs(name Token, arity, opIdx int) (in, out string, op *algebra.Op, err error) {
	args, err := p.argList(name)
	if err != nil {
		return "", "", nil, err
	}
	if len(args) != arity {
		return "", "", nil, errorf(name.Line, name.Col,
			"%s takes %d arguments, got %d", name.Text, arity, len(args))
	}
	opName := args[opIdx]
	op, ok := mpiOps[opName]
	if !ok {
		op, ok = p.syms.Op(opName)
	}
	if !ok {
		return "", "", nil, errorf(name.Line, name.Col, "unknown reduction operator %q", opName)
	}
	return args[0], args[1], op, nil
}

// argList parses ( ident , ident , … ).
func (p *mpiParser) argList(name Token) ([]string, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []string
	for {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, errorf(t.Line, t.Col, "expected an argument name in %s(…), found %s", name.Text, t)
		}
		args = append(args, t.Text)
		sep := p.next()
		switch sep.Kind {
		case TokComma:
			continue
		case TokRParen:
			return args, nil
		default:
			return nil, errorf(sep.Line, sep.Col, "expected ',' or ')' in %s(…), found %s", name.Text, sep)
		}
	}
}

// assignment parses out = f ( in ).
func (p *mpiParser) assignment(out Token) (term.Term, error) {
	eq := p.next()
	if eq.Kind != TokOp || eq.Text != "=" {
		return nil, errorf(eq.Line, eq.Col, "expected '=' or an MPI collective after %q, found %s", out.Text, eq)
	}
	fname, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	fn, ok := p.syms.Fn(fname.Text)
	if !ok {
		return nil, errorf(fname.Line, fname.Col, "unknown local function %q", fname.Text)
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	in, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if err := p.chain(out, in.Text, out.Text); err != nil {
		return nil, err
	}
	return term.Map{F: fn}, nil
}

// chain enforces dataflow: in must be the current value's variable.
func (p *mpiParser) chain(at Token, in, out string) error {
	if p.current != "" && in != p.current {
		return errorf(at.Line, at.Col,
			"dataflow break: statement consumes %q but the running value is in %q", in, p.current)
	}
	p.current = out
	return nil
}
