package lang_test

import (
	"testing"

	"repro/internal/lang"
)

// FuzzParse throws arbitrary byte strings at the surface-syntax parser
// and the MPI-sketch parser. Neither may crash; and whenever Parse
// accepts an input, the printed form must re-parse to the same printed
// form — the round trip the chaos harness's reproducer strings rely on.
//
// The committed corpus lives in testdata/fuzz/FuzzParse; CI runs a short
// -fuzz smoke on top of the fixed seeds.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"bcast",
		"bcast ; scan(+) ; reduce(*)",
		"map pair ; allreduce(max) ; map pi_1",
		"gather ; scatter",
		"scan(left) ; scan(min) ; reduce(+)",
		"bcast ; scan(+) ; scan(*) ; allreduce(max)",
		"map quadruple ; map pi_1",
		"scan(",
		"bcast ;; scan(+)",
		"reduce(unknownop)",
		"map nosuchfn",
		"; bcast",
		"",
		"scan(+) extra",
		"bcast ; scan(+) ;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tm, err := lang.Parse(src, nil)
		if err == nil {
			s1 := tm.String()
			tm2, err2 := lang.Parse(s1, nil)
			if err2 != nil {
				t.Fatalf("accepted %q but rejected its own print %q: %v", src, s1, err2)
			}
			if s2 := tm2.String(); s2 != s1 {
				t.Fatalf("print round trip diverged: %q -> %q -> %q", src, s1, s2)
			}
		}
		// The MPI-sketch parser must never crash either; its errors are
		// free-form, so only robustness is asserted.
		_, _ = lang.ParseMPI(src, nil)
	})
}
