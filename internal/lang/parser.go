package lang

import (
	"strconv"

	"repro/internal/algebra"
	"repro/internal/term"
)

// Symbols resolves operator and function names during parsing.
type Symbols struct {
	ops map[string]*algebra.Op
	fns map[string]*term.Fn
}

// NewSymbols returns a table pre-loaded with the standard base operators
// (+, *, max, min, left, -) and the auxiliary functions (pair, triple,
// quadruple, pi_1).
func NewSymbols() *Symbols {
	s := &Symbols{
		ops: make(map[string]*algebra.Op),
		fns: make(map[string]*term.Fn),
	}
	for _, op := range []*algebra.Op{
		algebra.Add, algebra.Mul, algebra.Max, algebra.Min, algebra.Left, algebra.Sub,
	} {
		s.DefineOp(op)
	}
	for _, fn := range []*term.Fn{
		term.PairFn, term.TripleFn, term.QuadrupleFn, term.FirstFn,
	} {
		s.DefineFn(fn)
	}
	return s
}

// DefineOp registers an operator under its name.
func (s *Symbols) DefineOp(op *algebra.Op) { s.ops[op.Name] = op }

// DefineFn registers a map function under its name.
func (s *Symbols) DefineFn(fn *term.Fn) { s.fns[fn.Name] = fn }

// Op looks up an operator by name.
func (s *Symbols) Op(name string) (*algebra.Op, bool) {
	op, ok := s.ops[name]
	return op, ok
}

// Fn looks up a map function by name.
func (s *Symbols) Fn(name string) (*term.Fn, bool) {
	fn, ok := s.fns[name]
	return fn, ok
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
	syms *Symbols
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		return t, errorf(t.Line, t.Col, "expected %s, found %s", kind, t)
	}
	return t, nil
}

// Parse parses a program in the paper's notation:
//
//	program := stage (';' stage)*
//	stage   := 'bcast'
//	         | ('scan' | 'reduce' | 'allreduce') '(' opname ')'
//	         | 'map' fnname
//	         | 'halo' '(' int (',' int)* ')'
//	         | 'allgatherv' '(' uint (',' uint)* ')'
//	         | 'reduce_scatterv' '(' opname ',' uint (',' uint)* ')'
//
// resolving names against syms (nil means NewSymbols()). Halo offsets
// may be negative; counts vectors may not.
func Parse(src string, syms *Symbols) (term.Term, error) {
	if syms == nil {
		syms = NewSymbols()
	}
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, syms: syms}
	var stages term.Seq
	for {
		st, err := p.stage()
		if err != nil {
			return nil, err
		}
		stages = append(stages, st)
		if p.peek().Kind != TokSemi {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokEOF); err != nil {
		return nil, err
	}
	return stages, nil
}

func (p *parser) stage() (term.Term, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	switch t.Text {
	case "bcast":
		return term.Bcast{}, nil
	case "gather":
		return term.Gather{}, nil
	case "scatter":
		return term.Scatter{}, nil
	case "scan":
		op, err := p.opArg(t)
		if err != nil {
			return nil, err
		}
		return term.Scan{Op: op}, nil
	case "reduce":
		op, err := p.opArg(t)
		if err != nil {
			return nil, err
		}
		return term.Reduce{Op: op}, nil
	case "allreduce":
		op, err := p.opArg(t)
		if err != nil {
			return nil, err
		}
		return term.Reduce{Op: op, All: true}, nil
	case "halo":
		offs, err := p.intList(t, true)
		if err != nil {
			return nil, err
		}
		return term.Halo{H: &term.Hood{Offsets: offs}}, nil
	case "allgatherv":
		counts, err := p.intList(t, false)
		if err != nil {
			return nil, err
		}
		return term.AllGatherV{Counts: counts}, nil
	case "reduce_scatterv":
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		ot := p.next()
		if ot.Kind != TokIdent && ot.Kind != TokOp {
			return nil, errorf(ot.Line, ot.Col, "expected an operator name after reduce_scatterv(, found %s", ot)
		}
		op, ok := p.syms.Op(ot.Text)
		if !ok {
			return nil, errorf(ot.Line, ot.Col, "unknown operator %q", ot.Text)
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		counts, err := p.ints(false)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return term.ReduceScatterV{Op: op, Counts: counts}, nil
	case "map":
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		fn, ok := p.syms.Fn(name.Text)
		if !ok {
			return nil, errorf(name.Line, name.Col, "unknown map function %q", name.Text)
		}
		return term.Map{F: fn}, nil
	default:
		return nil, errorf(t.Line, t.Col, "unknown stage %q (expected bcast, gather, scatter, scan, reduce, allreduce or map)", t.Text)
	}
}

// intList parses '(' int (',' int)* ')'.
func (p *parser) intList(stage Token, signed bool) ([]int, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	out, err := p.ints(signed)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return out, nil
}

// ints parses int (',' int)*, where an int is a TokNumber optionally
// preceded (when signed) by a '-' operator token.
func (p *parser) ints(signed bool) ([]int, error) {
	var out []int
	for {
		neg := false
		if t := p.peek(); signed && t.Kind == TokOp && t.Text == "-" {
			p.next()
			neg = true
		}
		t, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		v, err2 := strconv.Atoi(t.Text)
		if err2 != nil {
			return nil, errorf(t.Line, t.Col, "bad integer %q", t.Text)
		}
		if neg {
			v = -v
		}
		out = append(out, v)
		if p.peek().Kind != TokComma {
			return out, nil
		}
		p.next()
	}
}

// opArg parses '(' opname ')' and resolves the operator.
func (p *parser) opArg(stage Token) (*algebra.Op, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	t := p.next()
	if t.Kind != TokIdent && t.Kind != TokOp {
		return nil, errorf(t.Line, t.Col, "expected an operator name after %s(, found %s", stage.Text, t)
	}
	op, ok := p.syms.Op(t.Text)
	if !ok {
		return nil, errorf(t.Line, t.Col, "unknown operator %q", t.Text)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return op, nil
}
