package lang

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/term"
)

// FormatMPI renders a term as MPI-like pseudocode in the style of §2.1 —
// the reverse of ParseMPI. Standard collectives become the corresponding
// MPI calls; the paper's *new* collective operations (reduce_balanced,
// scan_balanced, comcast, iter), which §6 notes "can be used only if the
// corresponding collective operation is implemented on a particular
// machine", are emitted as calls under their own names with a comment
// citing the section that defines them.
//
// Intermediate variables are synthesized (v0, v1, …); counts, types and
// communicators are emitted symbolically, as the paper writes them.
func FormatMPI(t term.Term) string {
	var b strings.Builder
	v := 0
	cur := func() string { return fmt.Sprintf("v%d", v) }
	nextVar := func() string {
		v++
		return fmt.Sprintf("v%d", v)
	}
	for _, stage := range term.Stages(t) {
		switch s := stage.(type) {
		case term.Map:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "%s = %s ( %s );\n", out, s.F.Name, in)
		case term.MapIdx:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "%s = %s ( rank, %s );  /* map#: rank-indexed local stage */\n", out, s.F.Name, in)
		case term.Scan:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "MPI_Scan (%s, %s, count, type, %s, comm);\n", in, out, mpiOpName(s.Op))
		case term.Reduce:
			in := cur()
			out := nextVar()
			switch {
			case s.Balanced && s.All:
				fmt.Fprintf(&b, "Allreduce_balanced (%s, %s, count, type, %s, comm);  /* new collective, §3.2 */\n",
					in, out, s.Op.Name)
			case s.Balanced:
				fmt.Fprintf(&b, "Reduce_balanced (%s, %s, count, type, %s, root, comm);  /* new collective, §3.2 */\n",
					in, out, s.Op.Name)
			case s.All:
				fmt.Fprintf(&b, "MPI_Allreduce (%s, %s, count, type, %s, comm);\n", in, out, mpiOpName(s.Op))
			default:
				fmt.Fprintf(&b, "MPI_Reduce (%s, %s, count, type, %s, root, comm);\n", in, out, mpiOpName(s.Op))
			}
		case term.ScanBal:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "Scan_balanced (%s, %s, count, type, %s, comm);  /* new collective, §3.3 */\n",
				in, out, s.Op.Name)
		case term.Bcast:
			fmt.Fprintf(&b, "MPI_Bcast (%s, count, type, root, comm);\n", cur())
		case term.Gather:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "MPI_Gather (%s, count, type, %s, count, type, root, comm);\n", in, out)
		case term.Scatter:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "MPI_Scatter (%s, count, type, %s, count, type, root, comm);\n", in, out)
		case term.Comcast:
			in := cur()
			out := nextVar()
			impl := "bcast+repeat"
			if s.CostOptimal {
				impl = "successive doubling"
			}
			fmt.Fprintf(&b, "Comcast (%s, %s, count, type, %s, root, comm);  /* new collective, §3.4 (%s) */\n",
				in, out, s.Ops.Name, impl)
		case term.Iter:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "%s = iter ( %s, %s );  /* local, §3.5: %s applied log p times on the root */\n",
				out, s.Op.Name, in, s.Op.Name)
		case term.Halo:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "MPI_Neighbor_allgather (%s, count, type, %s, count, type, comm_graph);  /* neighborhood (%s) */\n",
				in, out, s.H)
		case term.AllGatherV:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "MPI_Allgatherv (%s, counts[rank], type, %s, counts, displs, type, comm);  /* counts = {%s} */\n",
				in, out, countsList(s.Counts))
		case term.ReduceScatterV:
			in := cur()
			out := nextVar()
			fmt.Fprintf(&b, "MPI_Reduce_scatter (%s, %s, counts, type, %s, comm);  /* counts = {%s} */\n",
				in, out, mpiOpName(s.Op), countsList(s.Counts))
		default:
			fmt.Fprintf(&b, "/* no MPI rendering for %s */\n", stage)
		}
	}
	return b.String()
}

// countsList renders a counts vector for the emitted comments.
func countsList(counts []int) string {
	parts := make([]string, len(counts))
	for i, c := range counts {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ", ")
}

// mpiOpName maps the predefined base operators back to their MPI names;
// other operators keep their own names (the programmer registers them as
// user-defined MPI_Op values).
func mpiOpName(op *algebra.Op) string {
	switch op {
	case algebra.Add:
		return "MPI_SUM"
	case algebra.Mul:
		return "MPI_PROD"
	case algebra.Max:
		return "MPI_MAX"
	case algebra.Min:
		return "MPI_MIN"
	}
	return op.Name
}
