package lang

import (
	"strings"
	"testing"

	"repro/internal/term"
)

// TestSparseParseRoundTrip pins the surface syntax of the sparse
// collectives: parsing a program and rendering it back is the identity,
// and re-parsing the rendering is a fixed point.
func TestSparseParseRoundTrip(t *testing.T) {
	programs := []string{
		"halo(-1,1)",
		"halo(0)",
		"halo(1,2) ; halo(0,3)",
		"allgatherv(2,0,3)",
		"reduce_scatterv(+,2,0,3)",
		"reduce_scatterv(max,1,1)",
		"halo(-2,5) ; map pair ; allgatherv(0,4)",
		"reduce_scatterv(+,2,0,3) ; allgatherv(2,0,3)",
	}
	for _, src := range programs {
		prog, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		rendered := prog.String()
		if rendered != src {
			t.Fatalf("Parse(%q).String() = %q", src, rendered)
		}
		again, err := Parse(rendered, nil)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("parse/print not a fixed point: %q -> %q", rendered, again.String())
		}
	}
}

func TestSparseParseErrors(t *testing.T) {
	bad := []string{
		"halo()",                 // empty offset list
		"halo(x)",                // not an integer
		"allgatherv(-1,2)",       // counts may not be negative
		"allgatherv(1 2)",        // missing comma
		"reduce_scatterv(2,0,3)", // missing operator
		"reduce_scatterv(?,1,1)", // unknown operator
		"halo(1,)",               // trailing comma
	}
	for _, src := range bad {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSparseFormatMPI(t *testing.T) {
	prog, err := Parse("halo(-1,1) ; allgatherv(2,0,3) ; reduce_scatterv(+,2,0,3)", nil)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMPI(prog)
	for _, want := range []string{
		"MPI_Neighbor_allgather",
		"MPI_Allgatherv",
		"MPI_Reduce_scatter",
		"counts = {2, 0, 3}",
		"MPI_SUM",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatMPI missing %q in:\n%s", want, out)
		}
	}
}

func TestLexNumbersStayAdditive(t *testing.T) {
	// Digit runs are tokens now; they must not leak into identifiers or
	// operators elsewhere in the grammar.
	if _, err := Parse("scan(+) ; reduce(+)", nil); err != nil {
		t.Fatalf("dense program broke: %v", err)
	}
	if _, err := Parse("map pair2", nil); err == nil {
		t.Error("unknown identifier with digits accepted")
	}
	_ = term.Seq{}
}
