package lang

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/rules"
	"repro/internal/term"
)

func TestFormatMPIStandardCollectives(t *testing.T) {
	prog, err := Parse("bcast ; scan(+) ; reduce(*) ; allreduce(max) ; gather ; scatter", nil)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatMPI(prog)
	for _, want := range []string{
		"MPI_Bcast (v0, count, type, root, comm);",
		"MPI_Scan (v0, v1, count, type, MPI_SUM, comm);",
		"MPI_Reduce (v1, v2, count, type, MPI_PROD, root, comm);",
		"MPI_Allreduce (v2, v3, count, type, MPI_MAX, comm);",
		"MPI_Gather (v3, count, type, v4",
		"MPI_Scatter (v4, count, type, v5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("emitted code missing %q:\n%s", want, out)
		}
	}
}

func TestFormatMPIRoundTripsThroughParseMPI(t *testing.T) {
	// Standard-collective programs survive term → MPI text → term.
	prog, err := Parse("bcast ; scan(+) ; reduce(*)", nil)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatMPI(prog)
	again, err := ParseMPI(text, nil)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if !term.EqualTerms(prog, again) {
		t.Fatalf("round trip changed the program:\n%s\n-> %s", text, again)
	}
}

func TestFormatMPINewCollectives(t *testing.T) {
	// An optimized program uses the paper's new collectives; the emitter
	// marks them with their defining sections.
	prog, err := Parse("scan(+) ; reduce(+)", nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := rules.NewEngine()
	opt, apps := eng.Optimize(prog)
	if len(apps) == 0 {
		t.Fatal("no rule applied")
	}
	out := FormatMPI(opt)
	if !strings.Contains(out, "Reduce_balanced") || !strings.Contains(out, "§3.2") {
		t.Fatalf("emitted code:\n%s", out)
	}
	if !strings.Contains(out, "v1 = pair ( v0 );") {
		t.Fatalf("pair stage missing:\n%s", out)
	}
}

func TestFormatMPIComcastAndIter(t *testing.T) {
	ops := algebra.OpCompBS(algebra.Add)
	br := algebra.OpBR(algebra.Mul)
	prog := term.Seq{
		term.Comcast{Ops: ops},
		term.Comcast{Ops: ops, CostOptimal: true},
		term.Iter{Op: br},
	}
	out := FormatMPI(prog)
	if !strings.Contains(out, "bcast+repeat") || !strings.Contains(out, "successive doubling") {
		t.Fatalf("comcast implementations not distinguished:\n%s", out)
	}
	if !strings.Contains(out, "iter ( op_br(*)") {
		t.Fatalf("iter missing:\n%s", out)
	}
}

func TestMpiOpNameFallsBackToOwnName(t *testing.T) {
	if got := mpiOpName(algebra.Left); got != "left" {
		t.Fatalf("mpiOpName(left) = %q", got)
	}
}
