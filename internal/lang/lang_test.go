package lang

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/term"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("bcast ; scan(+) ; map pi_1")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	wantKinds := []TokenKind{
		TokIdent, TokSemi, TokIdent, TokLParen, TokOp, TokRParen,
		TokSemi, TokIdent, TokIdent, TokEOF,
	}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("token kinds = %v (texts %v)", kinds, texts)
	}
	for i := range wantKinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("token %d = %v %q, want %v", i, kinds[i], texts[i], wantKinds[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("bcast # the broadcast\n; scan(+)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "bcast" || toks[1].Kind != TokSemi {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("bcast ;\n  scan(+)")
	if err != nil {
		t.Fatal(err)
	}
	// "scan" is on line 2, column 3.
	var scan Token
	for _, tok := range toks {
		if tok.Text == "scan" {
			scan = tok
		}
	}
	if scan.Line != 2 || scan.Col != 3 {
		t.Fatalf("scan at %d:%d, want 2:3", scan.Line, scan.Col)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	_, err := Lex("scan(@)")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "@") {
		t.Fatalf("error = %v", err)
	}
}

func TestParseExampleProgram(t *testing.T) {
	prog, err := Parse("scan(+) ; reduce(*) ; bcast", nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := term.Stages(prog)
	if len(stages) != 3 {
		t.Fatalf("stages = %v", stages)
	}
	if s, ok := stages[0].(term.Scan); !ok || s.Op != algebra.Add {
		t.Fatalf("stage 0 = %v", stages[0])
	}
	if r, ok := stages[1].(term.Reduce); !ok || r.Op != algebra.Mul || r.All {
		t.Fatalf("stage 1 = %v", stages[1])
	}
	if _, ok := stages[2].(term.Bcast); !ok {
		t.Fatalf("stage 2 = %v", stages[2])
	}
}

func TestParseAllReduceAndMaps(t *testing.T) {
	prog, err := Parse("map pair ; allreduce(max) ; map pi_1", nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := term.Stages(prog)
	if m, ok := stages[0].(term.Map); !ok || m.F != term.PairFn {
		t.Fatalf("stage 0 = %v", stages[0])
	}
	if r, ok := stages[1].(term.Reduce); !ok || !r.All || r.Op != algebra.Max {
		t.Fatalf("stage 1 = %v", stages[1])
	}
	if m, ok := stages[2].(term.Map); !ok || m.F != term.FirstFn {
		t.Fatalf("stage 2 = %v", stages[2])
	}
}

func TestParseRoundTripsThroughString(t *testing.T) {
	srcs := []string{
		"bcast",
		"scan(+)",
		"bcast ; scan(+)",
		"scan(*) ; reduce(+)",
		"map pair ; allreduce(min) ; map pi_1",
		"bcast ; scan(*) ; scan(+) ; reduce(max)",
	}
	for _, src := range srcs {
		prog, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := prog.String(); got != src {
			t.Fatalf("round trip %q -> %q", src, got)
		}
		again, err := Parse(prog.String(), nil)
		if err != nil {
			t.Fatalf("re-parse %q: %v", prog, err)
		}
		if !term.EqualTerms(prog, again) {
			t.Fatalf("%q re-parses differently", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "expected identifier"},
		{"scan", "expected '('"},
		{"scan(+", "expected ')'"},
		{"scan()", "expected an operator name"},
		{"scan(bogus)", "unknown operator"},
		{"map bogus", "unknown map function"},
		{"frobnicate", "unknown stage"},
		{"bcast scan(+)", "expected end of input"},
		{"bcast ;; scan(+)", "expected identifier"},
		{"map", "expected identifier"},
	}
	for _, c := range cases {
		_, err := Parse(c.src, nil)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("bcast ;\nscan(bogus)", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:6:") {
		t.Fatalf("error = %v, want position 2:6", err)
	}
}

func TestCustomSymbols(t *testing.T) {
	syms := NewSymbols()
	xor := algebra.NewBase("xor", func(x, y float64) float64 {
		return float64(int64(x) ^ int64(y))
	})
	syms.DefineOp(xor)
	double := &term.Fn{Name: "double", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, v)
	}}
	syms.DefineFn(double)
	prog, err := Parse("map double ; scan(xor)", syms)
	if err != nil {
		t.Fatal(err)
	}
	stages := term.Stages(prog)
	if s, ok := stages[1].(term.Scan); !ok || s.Op != xor {
		t.Fatalf("stage 1 = %v", stages[1])
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k := TokEOF; k <= TokComma; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "TokenKind(") {
			t.Errorf("kind %d has string %q", int(k), s)
		}
	}
	if s := TokenKind(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown kind = %q", s)
	}
}

func TestParseGatherScatter(t *testing.T) {
	prog, err := Parse("gather ; scatter ; scan(+)", nil)
	if err != nil {
		t.Fatal(err)
	}
	stages := term.Stages(prog)
	if _, ok := stages[0].(term.Gather); !ok {
		t.Fatalf("stage 0 = %v", stages[0])
	}
	if _, ok := stages[1].(term.Scatter); !ok {
		t.Fatalf("stage 1 = %v", stages[1])
	}
	if got := prog.String(); got != "gather ; scatter ; scan(+)" {
		t.Fatalf("round trip = %q", got)
	}
}
