package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// syncBuffer lets the test read run()'s stdout while the daemon
// goroutine is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^\s]+)`)

// startDaemon runs the serve mode on a free port and returns its base
// URL plus the exit-code channel.
func startDaemon(t *testing.T, stdout *syncBuffer, extra ...string) (string, chan int) {
	t.Helper()
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-fuse-cycle-ms", "1"}, extra...)
	go func() { exit <- run(args, stdout, stdout) }()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			return m[1], exit
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d:\n%s", code, stdout.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	t.Fatalf("daemon never announced its address:\n%s", stdout.String())
	return "", nil
}

func post(t *testing.T, base string, req serve.Request) serve.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	httpResp, err := http.Post(base+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("POST: HTTP %d", httpResp.StatusCode)
	}
	var resp serve.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeDrainOnSIGTERM is the daemon lifecycle test: serve real
// requests over a real socket, then SIGTERM and require a clean drain —
// exit 0, final statistics, and the goroutine watchdog passing.
func TestServeDrainOnSIGTERM(t *testing.T) {
	var out syncBuffer
	base, exit := startDaemon(t, &out)

	first := post(t, base, serve.Request{Program: "bcast ; scan(+)", M: 8})
	if first.Optimized == "" || first.Cached {
		t.Fatalf("first response: %+v", first)
	}
	again := post(t, base, serve.Request{Program: "bcast ; scan(+)", M: 8})
	if !again.Cached {
		t.Errorf("repeat request not served from cache")
	}
	fused := post(t, base, serve.Request{Program: "allreduce(+)", M: 2, Fuse: true})
	if fused.Fusion == nil {
		t.Errorf("fuse-enabled request has no fusion info")
	}

	// The client lives in the same process: park its keep-alive
	// goroutines so the daemon's leak watchdog only sees its own.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d after SIGTERM:\n%s", code, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []string{"signal received, draining", "served 3 requests", "drained cleanly"} {
		if !strings.Contains(got, want) {
			t.Errorf("drain output missing %q:\n%s", want, got)
		}
	}
}

// TestLoadgenModeEndToEnd runs the daemon and the load generator in the
// same process, over real sockets, and checks the report lands.
func TestLoadgenModeEndToEnd(t *testing.T) {
	var out syncBuffer
	base, exit := startDaemon(t, &out)
	defer func() {
		syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		<-exit
	}()

	jsonPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var lg syncBuffer
	code := run([]string{
		"-loadgen", "-target", base, "-requests", "400", "-clients", "4",
		"-distinct", "4", "-fusible", "20", "-seed", "3",
		"-json", jsonPath, "-min-hit-rate", "0.9",
	}, &lg, &lg)
	if code != 0 {
		t.Fatalf("loadgen exit %d:\n%s", code, lg.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Phases) != 3 {
		t.Errorf("report has %d phases, want 3", len(rep.Phases))
	}
	for _, want := range []string{"churn", "repeated", "fusible-burst", "wrote load report"} {
		if !strings.Contains(lg.String(), want) {
			t.Errorf("loadgen output missing %q:\n%s", want, lg.String())
		}
	}
}

// TestLoadgenMinHitRateFails: an impossible hit-rate floor makes the
// load generator fail, so CI can assert cache efficacy.
func TestLoadgenMinHitRateFails(t *testing.T) {
	var out syncBuffer
	base, exit := startDaemon(t, &out)
	defer func() {
		syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		<-exit
	}()
	var lg syncBuffer
	code := run([]string{
		"-loadgen", "-target", base, "-requests", "50", "-clients", "2",
		"-distinct", "40", "-seed", "5", "-min-hit-rate", "1.01",
	}, &lg, &lg)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for unattainable -min-hit-rate:\n%s", code, lg.String())
	}
	if !strings.Contains(lg.String(), "below required") {
		t.Errorf("missing hit-rate failure message:\n%s", lg.String())
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &out); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"-h"}, &out, &out); code != 2 {
		t.Errorf("-h: exit %d, want 2", code)
	}
	if !strings.Contains(out.String(), "-cache-shards") {
		t.Errorf("-h did not print flag defaults:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"stray"}, &out, &out); code != 2 {
		t.Errorf("stray positional arg: exit %d, want 2", code)
	}
}

func TestBadParamsFileExitsOne(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-params-file", filepath.Join(t.TempDir(), "missing.json")}, &out, &out)
	if code != 1 {
		t.Errorf("missing params file: exit %d, want 1", code)
	}
}

func TestListenFailureExitsOne(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:bad"}, &out, &out); code != 1 {
		t.Errorf("bad address: exit %d, want 1\n%s", code, out.String())
	}
}
