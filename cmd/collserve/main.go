// Command collserve is the optimizer-as-a-service daemon: a long-running
// HTTP/JSON server that accepts collective pipelines in the surface
// syntax, runs the cost-guided rewrite engine over them, and returns the
// optimized program, predicted cost and derivation summary. Plans are
// memoized in a sharded single-flight LRU cache keyed on the canonical
// program + machine parameters, and small compatible requests arriving
// within the fusion window are batched into one optimization over their
// combined block (see docs/SERVING.md).
//
// Serve mode:
//
//	collserve -addr 127.0.0.1:8080 [-params-file CALIB_native.json]
//
// Endpoints: POST /optimize, GET /healthz, GET /metrics. On SIGINT or
// SIGTERM the daemon drains gracefully: the listener stops accepting,
// in-flight requests and open fusion windows finish, final statistics
// are printed, and a watchdog-style goroutine check verifies nothing
// leaked before exit (exit 0 on a clean drain, 1 on a leak).
//
// Flags (serve mode):
//
//	-addr HOST:PORT     listen address (port 0 picks a free port)
//	-ts, -tw, -p, -m    default machine parameters for requests
//	-params-file FILE   calibrated ts/tw from collbench -calibrate
//	-cache-size N       plan-cache capacity (entries)
//	-cache-shards N     plan-cache shards (rounded up to a power of two)
//	-fuse-cycle-ms N    fusion window length
//	-fuse-max-count N   flush a fusion batch at N requests
//	-fuse-max-bytes N   flush a fusion batch at N fused bytes
//	-verify             semantically verify newly computed plans (default true)
//	-drain-timeout N    seconds to wait for in-flight requests on shutdown
//
// Load-generator mode replays randomized requests against a live daemon
// over real sockets and reports throughput, latency percentiles, cache
// hit rate and the fusion-batch distribution (BENCH_serve.json):
//
//	collserve -loadgen -target http://127.0.0.1:8080 -requests 1000000 \
//	          -clients 64 -distinct 500 -fusible 10000 -json BENCH_serve.json
//
// Flags (loadgen mode):
//
//	-target URL         daemon base URL
//	-requests N         total requests across the churn + repeated phases
//	-clients N          concurrent client connections
//	-distinct N         program-pool size of the repeated phase
//	-fusible N          extra fuse-enabled requests (0 skips the phase)
//	-seed N             workload seed
//	-strategy S         optimization strategy sent with every request:
//	                    "greedy" (default) or "search" for the global
//	                    plan search
//	-select             request collective-algorithm auto-selection with
//	                    every request (plans carry per-stage algorithm
//	                    choices under select-qualified cache keys)
//	-json FILE          write the machine-readable report here
//	-min-hit-rate F     fail (exit 1) if the repeated phase's cache hit
//	                    rate is below F
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code; factored out of
// main so the command is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("collserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		ts         = fs.Float64("ts", 1000, "default message start-up time")
		tw         = fs.Float64("tw", 1, "default per-word transfer time")
		p          = fs.Int("p", 64, "default number of processors")
		m          = fs.Int("m", 64, "default block size in words")
		paramsFile = fs.String("params-file", "", "load calibrated ts/tw from a collbench -calibrate report")
		cacheSize  = fs.Int("cache-size", 4096, "plan-cache capacity in entries")
		shards     = fs.Int("cache-shards", 64, "plan-cache shard count (rounded up to a power of two)")
		cycleMs    = fs.Float64("fuse-cycle-ms", 2, "fusion window length in milliseconds")
		fuseCount  = fs.Int("fuse-max-count", 16, "flush a fusion batch at this many requests")
		fuseBytes  = fs.Int("fuse-max-bytes", 64<<10, "flush a fusion batch at this many fused bytes")
		verify     = fs.Bool("verify", true, "semantically verify newly computed plans")
		drainSecs  = fs.Float64("drain-timeout", 10, "seconds to wait for in-flight requests on shutdown")

		loadgen    = fs.Bool("loadgen", false, "run as load generator against -target instead of serving")
		target     = fs.String("target", "http://127.0.0.1:8080", "loadgen: daemon base URL")
		requests   = fs.Int("requests", 100000, "loadgen: total requests across churn + repeated phases")
		clients    = fs.Int("clients", 32, "loadgen: concurrent client connections")
		distinct   = fs.Int("distinct", 500, "loadgen: program-pool size of the repeated phase")
		fusible    = fs.Int("fusible", 0, "loadgen: extra fuse-enabled requests (0 skips the fusion phase)")
		seed       = fs.Int64("seed", 1, "loadgen: workload seed")
		strategy   = fs.String("strategy", "", `loadgen: optimization strategy per request ("greedy" or "search")`)
		selectAlgo = fs.Bool("select", false, "loadgen: request collective-algorithm auto-selection with every request")
		jsonOut    = fs.String("json", "", "loadgen: write the machine-readable report to this file")
		minHitRate = fs.Float64("min-hit-rate", 0, "loadgen: fail if the repeated phase's hit rate is below this")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "collserve: unexpected arguments %v\n", fs.Args())
		return 2
	}

	if *loadgen {
		if _, err := serve.ParseStrategy(*strategy); err != nil {
			fmt.Fprintf(stderr, "collserve: %v\n", err)
			return 2
		}
		return runLoadgen(serve.LoadConfig{
			Target:   *target,
			Requests: *requests,
			Clients:  *clients,
			Distinct: *distinct,
			Fusible:  *fusible,
			Seed:     *seed,
			P:        *p,
			M:        *m,
			Strategy: *strategy,
			Select:   *selectAlgo,
			Out:      stdout,
		}, *jsonOut, *minHitRate, stdout, stderr)
	}

	// Install the signal handler before taking the goroutine baseline:
	// the signal package's delivery loop goroutine is permanent by
	// design and must not count as a leak.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	baseline := runtime.NumGoroutine()

	calibrated := ""
	if *paramsFile != "" {
		rep, err := calib.ReadReport(*paramsFile)
		if err != nil {
			fmt.Fprintf(stderr, "collserve: %v\n", err)
			return 1
		}
		*ts, *tw = rep.Fit.Ts, rep.Fit.Tw
		calibrated = fmt.Sprintf(" (calibrated from %s)", *paramsFile)
	}
	cfg := serve.Config{
		Machine:      core.Machine{Ts: *ts, Tw: *tw, P: *p, M: *m},
		CacheSize:    *cacheSize,
		CacheShards:  *shards,
		FuseCycle:    time.Duration(*cycleMs * float64(time.Millisecond)),
		FuseMaxCount: *fuseCount,
		FuseMaxBytes: *fuseBytes,
		NoVerify:     !*verify,
	}
	s := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "collserve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "collserve: listening on http://%s%s\n", ln.Addr(), calibrated)
	fmt.Fprintf(stdout, "collserve: machine ts=%g tw=%g p=%d m=%d, cache %d entries, fusion window %gms/%d reqs/%d bytes\n",
		*ts, *tw, *p, *m, *cacheSize, *cycleMs, *fuseCount, *fuseBytes)

	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(stderr, "collserve: serve: %v\n", err)
		return 1
	}
	stop()

	// Graceful drain: stop accepting, let in-flight requests and open
	// fusion windows finish, then account for every goroutine.
	fmt.Fprintln(stdout, "collserve: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs*float64(time.Second)))
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "collserve: shutdown: %v\n", err)
		return 1
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	s.Drain()

	snap := s.Metrics()
	fmt.Fprintf(stdout, "collserve: served %d requests (%d optimized, %d errors), engine runs %d\n",
		snap.Requests, snap.Optimized, snap.Errors, snap.EngineRuns)
	fmt.Fprintf(stdout, "collserve: cache %d/%d entries, %d hits, %d misses, %d coalesced, %d evictions (hit rate %.1f%%)\n",
		snap.Cache.Size, snap.Cache.Capacity, snap.Cache.Hits, snap.Cache.Misses,
		snap.Cache.Coalesced, snap.Cache.Evictions, 100*snap.Cache.HitRate())
	fmt.Fprintf(stdout, "collserve: fusion %d batches over %d requests (max batch %d)\n",
		snap.Fusion.Batches, snap.Fusion.FusedRequests, snap.Fusion.MaxBatch)

	// Watchdog-style goroutine accounting, as the backend leak tests do:
	// settle, then compare against the pre-listen baseline.
	leaked := -1
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if n := runtime.NumGoroutine(); n <= baseline {
			leaked = 0
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leaked != 0 {
		n := runtime.NumGoroutine()
		fmt.Fprintf(stderr, "collserve: LEAK: %d goroutines after drain (baseline %d)\n", n, baseline)
		return 1
	}
	fmt.Fprintf(stdout, "collserve: drained cleanly (%d goroutines, baseline %d)\n", runtime.NumGoroutine(), baseline)
	return 0
}

// runLoadgen drives serve.Loadgen and applies the exit-code policy: any
// transport/HTTP errors or a repeated-phase hit rate below -min-hit-rate
// fail the run.
func runLoadgen(cfg serve.LoadConfig, jsonOut string, minHitRate float64, stdout, stderr io.Writer) int {
	fmt.Fprintf(stdout, "collserve loadgen: %d requests, %d clients, %d distinct programs, %d fusible, seed %d -> %s\n",
		cfg.Requests, cfg.Clients, cfg.Distinct, cfg.Fusible, cfg.Seed, cfg.Target)
	rep, err := serve.Loadgen(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "collserve: %v\n", err)
		return 1
	}
	if jsonOut != "" {
		if err := serve.WriteLoadReport(jsonOut, rep); err != nil {
			fmt.Fprintf(stderr, "collserve: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote load report to %s\n", jsonOut)
	}
	code := 0
	for _, ph := range rep.Phases {
		if ph.Errors > 0 {
			fmt.Fprintf(stderr, "collserve: phase %s had %d errors\n", ph.Name, ph.Errors)
			code = 1
		}
		if ph.Name == "repeated" && ph.CacheHitRate < minHitRate {
			fmt.Fprintf(stderr, "collserve: repeated-phase hit rate %.1f%% below required %.1f%%\n",
				100*ph.CacheHitRate, 100*minHitRate)
			code = 1
		}
	}
	if len(rep.Fusion.Dist) > 0 {
		fmt.Fprintf(stdout, "fusion batches: %d over %d requests, max batch %d, dist %v\n",
			rep.Fusion.Batches, rep.Fusion.FusedRequests, rep.Fusion.MaxBatch, rep.Fusion.Dist)
	}
	return code
}
