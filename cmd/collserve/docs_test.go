package main

import (
	"bytes"
	"testing"

	"repro/internal/docscan"
)

// definedFlags harvests the command's real flag set from its -h output.
func definedFlags(t *testing.T) map[string]bool {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("-h: exit %d", code)
	}
	flags := docscan.UsageFlags(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", errb.String())
	}
	return flags
}

// TestDocCommentCoversEveryFlag: each flag collserve defines must be
// mentioned in the command's doc comment.
func TestDocCommentCoversEveryFlag(t *testing.T) {
	src, err := docscan.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	documented := docscan.Flags(docscan.DocComment(src))
	if missing := docscan.Missing(definedFlags(t), documented); missing != nil {
		t.Errorf("flags missing from the doc comment: %v", missing)
	}
}

// TestServingDocFlagsExist: every -flag that docs/SERVING.md attributes
// to collserve must actually exist, so its example command lines keep
// working.
func TestServingDocFlagsExist(t *testing.T) {
	doc, err := docscan.ReadFile("../../docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	claimed := docscan.DocFlags(doc, "collserve")
	if len(claimed) == 0 {
		t.Fatal("docs/SERVING.md no longer documents any collserve flags")
	}
	if missing := docscan.Missing(claimed, definedFlags(t)); missing != nil {
		t.Errorf("docs/SERVING.md uses collserve flags that do not exist: %v", missing)
	}
}

// TestDocsPagesFlagsExist: every -flag that any docs/ page attributes
// to collserve must actually exist, whichever page the example lives on.
func TestDocsPagesFlagsExist(t *testing.T) {
	byPage, err := docscan.DocFlagsInDir("../../docs", "collserve")
	if err != nil {
		t.Fatal(err)
	}
	if len(byPage) == 0 {
		t.Fatal("no docs/ page documents any collserve flags")
	}
	defined := definedFlags(t)
	for page, claimed := range byPage {
		if missing := docscan.Missing(claimed, defined); missing != nil {
			t.Errorf("docs/%s uses collserve flags that do not exist: %v", page, missing)
		}
	}
}

// TestReadmeFlagsExist: the README's collserve command lines must use
// real flags.
func TestReadmeFlagsExist(t *testing.T) {
	doc, err := docscan.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	claimed := docscan.DocFlags(doc, "collserve")
	if missing := docscan.Missing(claimed, definedFlags(t)); missing != nil {
		t.Errorf("README.md uses collserve flags that do not exist: %v", missing)
	}
}
