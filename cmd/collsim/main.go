// Command collsim runs a program on the virtual machine and shows what
// happened: the output list, the per-processor clocks, the makespan, and
// a text timeline of the run (the run-time pictures of Figures 1 and 3).
//
// Usage:
//
//	collsim [flags] "bcast ; scan(+)"
//
// Flags:
//
//	-ts N      message start-up time (default 100)
//	-tw N      per-word transfer time (default 1)
//	-p N       number of processors (default 8)
//	-m N       block size in words (default 1: scalar blocks)
//	-input S   comma-separated per-processor scalar inputs (default 1..p)
//	-width N   timeline width in columns (default 72)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/machine"
	"repro/internal/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code; factored out of
// main so the command is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("collsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ts := fs.Float64("ts", 100, "message start-up time")
	tw := fs.Float64("tw", 1, "per-word transfer time")
	p := fs.Int("p", 8, "number of processors")
	m := fs.Int("m", 1, "block size in words")
	input := fs.String("input", "", "comma-separated per-processor scalar inputs")
	width := fs.Int("width", 72, "timeline width")
	profile := fs.Bool("profile", false, "print per-processor usage and per-stage breakdown")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: collsim [flags] \"bcast ; scan(+)\"")
		fs.PrintDefaults()
		return 2
	}
	// The generator fns ride along so the documented sparse examples
	// (map inc, map inc_t after a halo) simulate from the shell too.
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	syms.DefineFn(rules.IncTupFn)
	t, err := lang.Parse(fs.Arg(0), syms)
	if err != nil {
		fmt.Fprintf(stderr, "collsim: parse error: %v\n", err)
		return 1
	}
	prog := core.FromTerm(t)

	in, err := buildInput(*input, *p, *m)
	if err != nil {
		fmt.Fprintf(stderr, "collsim: %v\n", err)
		return 1
	}
	mach := core.Machine{Ts: *ts, Tw: *tw, P: *p, M: *m}
	out, res, events := prog.RunTraced(mach, in)

	fmt.Fprintf(stdout, "program:  %s\n", prog)
	fmt.Fprintf(stdout, "machine:  ts=%g tw=%g p=%d\n", *ts, *tw, *p)
	fmt.Fprintf(stdout, "input:    %v\n", in)
	fmt.Fprintf(stdout, "output:   %v\n", out)
	fmt.Fprintf(stdout, "makespan: %.0f   (estimate %.0f)\n", res.Makespan, prog.Estimate(mach))
	fmt.Fprintf(stdout, "messages: %d\n\n", res.Messages)
	fmt.Fprint(stdout, machine.Timeline(events, *p, *width))
	if *profile {
		usage := machine.Analyze(events, *p)
		stages := machine.StageBreakdown(events, *p)
		fmt.Fprintf(stdout, "\n%s", machine.FormatProfile(usage, stages))
	}
	return 0
}

func buildInput(spec string, p, m int) ([]algebra.Value, error) {
	vals := make([]float64, p)
	if spec == "" {
		for i := range vals {
			vals[i] = float64(i + 1)
		}
	} else {
		parts := strings.Split(spec, ",")
		if len(parts) != p {
			return nil, fmt.Errorf("-input has %d values, machine has %d processors", len(parts), p)
		}
		for i, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("bad input value %q", s)
			}
			vals[i] = v
		}
	}
	in := make([]algebra.Value, p)
	for i, v := range vals {
		if m <= 1 {
			in[i] = algebra.Scalar(v)
		} else {
			b := make(algebra.Vec, m)
			for j := range b {
				b[j] = v
			}
			in[i] = b
		}
	}
	return in, nil
}
