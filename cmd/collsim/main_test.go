package main

import (
	"bytes"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestSimulatesBcastScan(t *testing.T) {
	out, _, code := runSim(t, "-p", "4", "bcast ; scan(+)")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	// Default input 1..4; bcast makes everything 1; scan gives 1 2 3 4.
	for _, want := range []string{
		"program:  bcast ; scan(+)",
		"output:   [1 2 3 4]",
		"makespan:",
		"legend:",
		"P0",
		"P3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCustomInput(t *testing.T) {
	out, _, code := runSim(t, "-p", "3", "-input", "5, 0, 0", "bcast ; scan(*)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "output:   [5 25 125]") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestVectorBlocks(t *testing.T) {
	out, _, code := runSim(t, "-p", "2", "-m", "3", "scan(+)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "[1 1 1]") || !strings.Contains(out, "[3 3 3]") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestInputLengthMismatch(t *testing.T) {
	_, errb, code := runSim(t, "-p", "4", "-input", "1,2", "bcast")
	if code != 1 || !strings.Contains(errb, "4 processors") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

func TestBadInputValue(t *testing.T) {
	_, errb, code := runSim(t, "-p", "2", "-input", "1,x", "bcast")
	if code != 1 || !strings.Contains(errb, "bad input value") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

func TestParseError(t *testing.T) {
	_, errb, code := runSim(t, "blub")
	if code != 1 || !strings.Contains(errb, "unknown stage") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

func TestUsage(t *testing.T) {
	_, errb, code := runSim(t)
	if code != 2 || !strings.Contains(errb, "usage: collsim") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

func TestProfileFlag(t *testing.T) {
	out, _, code := runSim(t, "-p", "4", "-profile", "bcast ; scan(+)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"compute", "stage breakdown", "bcast", "scan(+)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile output missing %q:\n%s", want, out)
		}
	}
}
