package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/docscan"
	"repro/internal/exper"
)

// definedFlags harvests the command's real flag set from its -h output.
func definedFlags(t *testing.T) map[string]bool {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 2 {
		t.Fatalf("-h: exit %d", code)
	}
	flags := docscan.UsageFlags(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", errb.String())
	}
	return flags
}

// TestDocCommentCoversEveryFlag: each flag collbench defines must be
// mentioned in the command's doc comment.
func TestDocCommentCoversEveryFlag(t *testing.T) {
	src, err := docscan.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	documented := docscan.Flags(docscan.DocComment(src))
	if missing := docscan.Missing(definedFlags(t), documented); missing != nil {
		t.Errorf("flags missing from the doc comment: %v", missing)
	}
}

// TestTestingDocFlagsExist: every -flag that docs/TESTING.md attributes
// to collbench must actually exist.
func TestTestingDocFlagsExist(t *testing.T) {
	doc, err := docscan.ReadFile("../../docs/TESTING.md")
	if err != nil {
		t.Fatal(err)
	}
	claimed := docscan.DocFlags(doc, "collbench")
	if len(claimed) == 0 {
		t.Fatal("docs/TESTING.md no longer documents any collbench flags")
	}
	if missing := docscan.Missing(claimed, definedFlags(t)); missing != nil {
		t.Errorf("docs/TESTING.md uses collbench flags that do not exist: %v", missing)
	}
}

// TestDocsPagesFlagsExist: every -flag that any docs/ page attributes
// to collbench must actually exist, whichever page the example lives on
// (TESTING.md, RULES.md, ALGORITHMS.md and TUTORIAL.md all quote
// collbench command lines).
func TestDocsPagesFlagsExist(t *testing.T) {
	byPage, err := docscan.DocFlagsInDir("../../docs", "collbench")
	if err != nil {
		t.Fatal(err)
	}
	if len(byPage) == 0 {
		t.Fatal("no docs/ page documents any collbench flags")
	}
	defined := definedFlags(t)
	for page, claimed := range byPage {
		if missing := docscan.Missing(claimed, defined); missing != nil {
			t.Errorf("docs/%s uses collbench flags that do not exist: %v", page, missing)
		}
	}
}

// TestDocsNameEveryApp: every application collbench -apps runs
// (exper.AppNames) must be named in a code span somewhere under docs/
// or in the README — an app added to the dispatch without
// documentation fails here, and exper's own harness test pins the
// reverse direction (every listed name actually runs).
func TestDocsNameEveryApp(t *testing.T) {
	byPage, err := docscan.CodeSpansInDir("../../docs")
	if err != nil {
		t.Fatal(err)
	}
	readme, err := docscan.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	byPage["README.md"] = docscan.CodeSpans(readme)
	for _, app := range exper.AppNames {
		found := false
		for _, spans := range byPage {
			for _, span := range spans {
				if strings.Contains(span, app) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("app %q (collbench -apps) is not named in any docs/ or README code span", app)
		}
	}
}

// TestReadmeFlagsExist: the README's collbench command lines must use
// real flags.
func TestReadmeFlagsExist(t *testing.T) {
	doc, err := docscan.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	claimed := docscan.DocFlags(doc, "collbench")
	if missing := docscan.Missing(claimed, definedFlags(t)); missing != nil {
		t.Errorf("README.md uses collbench flags that do not exist: %v", missing)
	}
}
