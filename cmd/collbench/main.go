// Command collbench regenerates the paper's evaluation artifacts: Table 1
// (predicted, optionally measured), the BS-Comcast experiments of Figures
// 7 and 8, the measured rule crossovers, and the §5 polynomial-evaluation
// case study.
//
// Usage:
//
//	collbench -table1 [-measured]     reproduce Table 1
//	collbench -fig7 [-csv]            reproduce Figure 7
//	collbench -fig8 [-csv]            reproduce Figure 8
//	collbench -fig2                   reproduce Figure 2
//	collbench -fig3                   reproduce Figure 3 (timelines)
//	collbench -crossover              measured vs predicted crossovers
//	collbench -crossfig [-csv]        plot the SS2-Scan crossover (§4.2)
//	collbench -scaling                strong scaling of SR2-Reduction's saving
//	collbench -apps                   strong scaling of the collective-only apps
//	collbench -polyeval               reproduce the §5 case study
//	collbench -everything             all of the above
//	collbench -report                 the full Markdown report (EXPERIMENTS.md)
//	collbench -algos                  algorithm portfolio vs butterfly (native)
//	collbench -benchjson FILE         wall-clock fusion + algorithm suites → JSON
//	collbench -calibrate              fit ts/tw/tc from native microbenchmarks
//
// Measurements default to the virtual machine, whose deterministic
// makespans follow the §4.1 cost model; -backend native re-runs them on
// the native goroutine backend, reporting real wall-clock nanoseconds
// (minimum over -reps repetitions), and -backend multiproc runs the
// calibration and algorithm sweeps (-calibrate, -algos, -benchjson) with
// the ranks as separate OS processes over Unix sockets — the transport
// where per-word cost is real. -transport picks the native payload
// discipline: zerocopy (the default reference hand-off) or copy
// (payloads deep-copied at the send site; see docs/PERF.md). Machine
// parameters default to a Parsytec-like start-up-dominated network
// (ts = 5000, tw = 1) and can be overridden with -ts/-tw/-p/-m; the
// native backend ignores ts/tw — the host's real start-up and bandwidth
// apply.
//
// -calibrate measures this machine's actual parameters: it runs the
// ping-pong/compute/collective probe family on the native backend, fits
// the a·ts + b·m·tw + c·m model by weighted least squares, validates
// every rule's predicted break-even against measurement, validates the
// collective-algorithm portfolio's predicted crossovers the same way
// (see docs/ALGORITHMS.md), and (with -params-file FILE) writes the
// machine-readable report — see the committed CALIB_native.json.
//
// -algos runs the portfolio validation standalone: every algorithm of
// docs/ALGORITHMS.md head-to-head against the §4.1 butterfly on the
// native backend, reporting measured speedups and the predicted and
// measured crossover block sizes. -quick shrinks the sweep to a smoke run.
// In any other mode, -params-file FILE loads a previous report and uses
// its calibrated ts/tw in place of the -ts/-tw defaults.
//
// -cpuprofile FILE and -memprofile FILE write runtime/pprof profiles of
// whatever mode runs, for inspection with `go tool pprof`; see
// docs/PERF.md for the profiling workflow.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/backend"
	"repro/internal/calib"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/machine"
	"repro/internal/mpbackend"
	"repro/internal/prof"
)

func main() {
	// Must run before anything else: multi-process measurements re-execute
	// this binary to spawn ranks.
	mpbackend.MaybeWorker()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code; factored out of
// main so the command is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("collbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ts := fs.Float64("ts", 5000, "message start-up time")
	tw := fs.Float64("tw", 1, "per-word transfer time")
	p := fs.Int("p", 64, "number of processors")
	m := fs.Int("m", 1024, "block size in words")
	table1 := fs.Bool("table1", false, "reproduce Table 1")
	measured := fs.Bool("measured", false, "also measure Table 1 on the virtual machine")
	fig2 := fs.Bool("fig2", false, "reproduce Figure 2")
	fig3 := fs.Bool("fig3", false, "reproduce Figure 3 (timelines)")
	fig7 := fs.Bool("fig7", false, "reproduce Figure 7")
	fig8 := fs.Bool("fig8", false, "reproduce Figure 8")
	crossover := fs.Bool("crossover", false, "measured vs predicted crossovers")
	crossfig := fs.Bool("crossfig", false, "plot the SS2-Scan before/after crossover (§4.2)")
	scaling := fs.Bool("scaling", false, "strong scaling of SR2-Reduction's saving")
	appsFlag := fs.Bool("apps", false, "strong scaling of the collective-only applications")
	polyeval := fs.Bool("polyeval", false, "reproduce the §5 case study")
	everything := fs.Bool("everything", false, "run every experiment")
	csv := fs.Bool("csv", false, "emit figures as CSV instead of ASCII plots")
	report := fs.Bool("report", false, "emit the full Markdown experiment report (EXPERIMENTS.md body)")
	backendFlag := fs.String("backend", "virtual", "measurement backend: virtual (cost-model time), native (wall-clock goroutines) or multiproc (wall-clock OS processes; -calibrate, -algos and -benchjson)")
	transportFlag := fs.String("transport", "zerocopy", "native transport: zerocopy (reference hand-off) or copy (payloads deep-copied at the send site)")
	reps := fs.Int("reps", 5, "repetitions per native measurement (minimum taken)")
	benchjson := fs.String("benchjson", "", "run the native wall-clock fusion + algorithm suites and write records to this JSON file")
	algosFlag := fs.Bool("algos", false, "measure the collective-algorithm portfolio against the butterfly (native wall-clock)")
	calibrate := fs.Bool("calibrate", false, "fit ts/tw from native microbenchmarks and validate every rule's break-even")
	quick := fs.Bool("quick", false, "with -calibrate: minimal sweep (smoke run for CI)")
	paramsFile := fs.String("params-file", "", "with -calibrate: write the calibration report here; otherwise: load calibrated ts/tw from this report")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	transport, err := backend.ParseTransport(*transportFlag)
	if err != nil {
		fmt.Fprintf(stderr, "collbench: %v\n", err)
		return 2
	}
	if err := validate(*p, *m, *reps, *backendFlag, *table1 && *measured); err != nil {
		fmt.Fprintf(stderr, "collbench: %v\n", err)
		return 2
	}
	multiproc := *backendFlag == "multiproc"
	if multiproc && transport == backend.TransportCopy {
		fmt.Fprintln(stderr, "collbench: -transport copy applies to the native backend; a process boundary always copies")
		return 2
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "collbench: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "collbench: %v\n", err)
		}
	}()

	if *calibrate {
		cfg := calib.DefaultConfig()
		if *quick {
			cfg = calib.QuickConfig()
		}
		cfg.Reps = *reps
		rep, err := calib.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "collbench: %v\n", err)
			return 1
		}
		if multiproc {
			mp, err := calib.RunMP(cfg)
			if err != nil {
				fmt.Fprintf(stderr, "collbench: %v\n", err)
				return 1
			}
			rep.MultiProc = mp
		}
		fmt.Fprint(stdout, calib.FormatReport(rep))
		if *paramsFile != "" {
			if err := calib.WriteReport(*paramsFile, rep); err != nil {
				fmt.Fprintf(stderr, "collbench: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote calibration report to %s\n", *paramsFile)
		}
		return 0
	}
	// mpTs/mpTw are the multi-process transport's calibrated parameters,
	// used for the predicted side of multi-process sweeps; they default to
	// the -ts/-tw values and are overridden by a loaded report's multiproc
	// section.
	mpTs, mpTw := *ts, *tw
	if *paramsFile != "" {
		rep, err := calib.ReadReport(*paramsFile)
		if err != nil {
			fmt.Fprintf(stderr, "collbench: %v\n", err)
			return 1
		}
		*ts, *tw = rep.Fit.Ts, rep.Fit.Tw
		mpTs, mpTw = *ts, *tw
		fmt.Fprintf(stdout, "using calibrated parameters from %s: ts=%.1f tw=%.4f\n", *paramsFile, *ts, *tw)
		if mp := rep.MultiProc; mp != nil {
			mpTs, mpTw = mp.Fit.Ts, mp.Fit.Tw
			fmt.Fprintf(stdout, "multiproc section: ts=%.1f tw=%.4f\n", mpTs, mpTw)
		}
	}
	native := *backendFlag == "native"
	run := exper.RunVirtual
	unit := ""
	if native {
		run = exper.TransportRunner(*reps, transport)
		unit = " [native wall-clock, ns]"
	}
	// virtualOnly flags modes whose output is inherently cost-model based.
	virtualOnly := func(mode string) {
		if native {
			fmt.Fprintf(stderr, "collbench: %s runs on the virtual machine regardless of -backend\n", mode)
		}
	}

	if *algosFlag {
		cfg := exper.DefaultNativeAlgoConfig()
		cfg.Reps = *reps
		cfg.Ts, cfg.Tw = *ts, *tw
		cfg.Transport = transport
		measure, kind := exper.NativeAlgos, "native"
		if multiproc {
			measure, kind = exper.MultiProcAlgos, "multi-process"
			cfg.Ts, cfg.Tw = mpTs, mpTw
		}
		recs, err := measure(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "collbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "== Collective-algorithm portfolio vs butterfly (%s wall-clock, reps=%d) ==\n", kind, cfg.Reps)
		fmt.Fprint(stdout, exper.FormatNativeFusion(recs))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, exper.FormatAlgoCrossovers(recs))
		return 0
	}

	if *benchjson != "" {
		cfg := exper.DefaultNativeFusionConfig()
		cfg.P = *p
		cfg.Reps = *reps
		cfg.Ts, cfg.Tw = *ts, *tw
		cfg.Transport = transport
		recs, err := exper.NativeFusion(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "collbench: %v\n", err)
			return 1
		}
		acfg := exper.DefaultNativeAlgoConfig()
		acfg.Reps = *reps
		acfg.Ts, acfg.Tw = *ts, *tw
		acfg.Transport = transport
		arecs, err := exper.NativeAlgos(acfg)
		if err != nil {
			fmt.Fprintf(stderr, "collbench: %v\n", err)
			return 1
		}
		recs = append(recs, arecs...)
		if multiproc {
			// The multi-process rows ride along after the native suites:
			// same record shape, Backend "multiproc", real tw. Their
			// predicted crossovers use the multi-process calibration.
			mcfg := acfg
			mcfg.Ts, mcfg.Tw = mpTs, mpTw
			mrecs, err := exper.MultiProcAlgos(mcfg)
			if err != nil {
				fmt.Fprintf(stderr, "collbench: %v\n", err)
				return 1
			}
			recs = append(recs, mrecs...)
		}
		if err := exper.WriteBenchJSON(*benchjson, recs); err != nil {
			fmt.Fprintf(stderr, "collbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "== Native wall-clock fusion suite (p=%d, reps=%d) ==\n", cfg.P, cfg.Reps)
		fmt.Fprint(stdout, exper.FormatNativeFusion(recs))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, exper.FormatAlgoCrossovers(arecs))
		fmt.Fprintf(stdout, "wrote %d records to %s\n", len(recs), *benchjson)
		return 0
	}

	if multiproc {
		fmt.Fprintln(stderr, "collbench: -backend multiproc supports -calibrate, -algos and -benchjson; other modes run on the virtual or native backend")
		return 2
	}
	if *report {
		virtualOnly("-report")
		fmt.Fprint(stdout, exper.Report(exper.ReportConfig{Ts: *ts, Tw: *tw, P: min(*p, 32), M: 16}))
		return 0
	}

	if *everything {
		*table1, *measured, *fig2, *fig3, *fig7, *fig8, *crossover, *polyeval =
			true, true, true, true, true, true, true, true
		if err := validate(*p, *m, *reps, *backendFlag, *measured); err != nil {
			fmt.Fprintf(stderr, "collbench: %v\n", err)
			return 2
		}
	}
	if !*table1 && !*fig2 && !*fig3 && !*fig7 && !*fig8 && !*crossover && !*crossfig && !*scaling && !*appsFlag && !*polyeval && !*report {
		fmt.Fprintln(stderr, "collbench: select an experiment (or -everything)")
		fs.PrintDefaults()
		return 2
	}
	params := machine.Params{Ts: *ts, Tw: *tw}
	mach := core.Machine{Ts: *ts, Tw: *tw, P: *p, M: *m}

	if *table1 {
		fmt.Fprintf(stdout, "== Table 1 (ts=%g tw=%g p=%d m=%d)%s ==\n", *ts, *tw, *p, *m, unit)
		rows := exper.Table1On(mach, *measured, run)
		fmt.Fprint(stdout, exper.FormatTable1(rows, *measured))
		fmt.Fprintln(stdout)
	}
	if *fig2 {
		virtualOnly("-fig2")
		fmt.Fprintln(stdout, "== Figure 2: P1 = P2 on [1 2 3 4] ==")
		p1, p2, mid := exper.Figure2()
		fmt.Fprintf(stdout, "P1 = allreduce(+):                        %v\n", p1)
		fmt.Fprintf(stdout, "P2 intermediate (allreduce(op_new)):      %v\n", mid)
		fmt.Fprintf(stdout, "P2 = map pair; allreduce(op_new); map pi: %v\n", p2)
		fmt.Fprintln(stdout)
	}
	if *fig3 {
		virtualOnly("-fig3")
		fmt.Fprintln(stdout, "== Figure 3: Example before/after SR2-Reduction ==")
		f3mach := core.Machine{Ts: *ts, Tw: *tw, P: min(*p, 8), M: *m}
		before, after, tB, tA := exper.Figure3(f3mach, 64)
		fmt.Fprint(stdout, before)
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, after)
		fmt.Fprintf(stdout, "\ntime saved: %.0f (%.1f%%)\n\n", tB-tA, 100*(tB-tA)/tB)
	}
	if *fig7 {
		fig := exper.Figure7On(params, *m, *p, run)
		emit(stdout, fig, *csv)
	}
	if *fig8 {
		fig := exper.Figure8On(params, *p, *m/8+1, *m*4, run)
		emit(stdout, fig, *csv)
	}
	if *crossover {
		fmt.Fprintf(stdout, "== Crossovers (largest m where the rule still improves; ts=%g tw=%g p=%d)%s ==\n", *ts, *tw, *p, unit)
		for _, rule := range []string{"SR-Reduction", "SS2-Scan", "SS-Scan"} {
			res := exper.MeasureCrossoverOn(rule, core.Machine{Ts: *ts, Tw: *tw, P: *p}, 1<<15, run)
			fmt.Fprintf(stdout, "  %-14s predicted m = %-6d measured m = %d\n", res.Rule, res.Predicted, res.Measured)
		}
		fmt.Fprintln(stdout)
	}
	if *crossfig {
		tsI := int(*ts)
		ms := []int{tsI / 8, tsI / 4, 3 * tsI / 8, tsI / 2, 5 * tsI / 8, 3 * tsI / 4, tsI}
		fig := exper.CrossoverFigureOn("SS2-Scan", params, min(*p, 16), ms, run)
		emit(stdout, fig, *csv)
	}
	if *scaling {
		ps := []int{}
		for q := 2; q <= *p; q *= 2 {
			ps = append(ps, q)
		}
		fig := exper.ScalingOn("SR2-Reduction", params, *m**p, ps, run)
		emit(stdout, fig, *csv)
	}
	if *appsFlag {
		virtualOnly("-apps")
		ps := []int{1, 2, 4, 8, 16, 32}
		for _, app := range exper.AppNames {
			rows := exper.AppSpeedup(app, *ts, *tw, 1<<14, ps)
			fmt.Fprintln(stdout, exper.FormatSpeedup(app, rows))
		}
	}
	if *polyeval {
		virtualOnly("-polyeval")
		fmt.Fprintf(stdout, "== §5 Polynomial evaluation (p=%d, %d points, ts=%g tw=%g) ==\n", *p, *m, *ts, *tw)
		pe := exper.NewPolyEval(1, *p, *m)
		for _, r := range pe.Run(*ts, *tw) {
			status := "ok"
			if !r.Correct {
				status = "WRONG RESULT"
			}
			fmt.Fprintf(stdout, "  %-28s %12.0f  %s\n", r.Name, r.Makespan, status)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

// validate rejects flag values that would otherwise panic deep inside an
// experiment, so bad invocations die with a clear message and exit 2.
func validate(p, m, reps int, backend string, measuredTable bool) error {
	if p < 1 {
		return fmt.Errorf("-p must be a positive processor count, got %d", p)
	}
	if m < 1 {
		return fmt.Errorf("-m must be a positive block size, got %d", m)
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be at least 1, got %d", reps)
	}
	if backend != "virtual" && backend != "native" && backend != "multiproc" {
		return fmt.Errorf("-backend must be \"virtual\", \"native\" or \"multiproc\", got %q", backend)
	}
	if measuredTable && !coll.IsPow2(p) {
		return fmt.Errorf("-table1 -measured needs a power-of-two -p (the Local rules rewrite to butterfly programs), got %d", p)
	}
	return nil
}

func emit(stdout io.Writer, fig exper.Figure, csv bool) {
	if csv {
		fmt.Fprintf(stdout, "# %s\n%s\n", fig.Title, fig.CSV())
	} else {
		fmt.Fprintln(stdout, fig.Plot(64, 16))
	}
}
