package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/calib"
	"repro/internal/exper"
)

func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestTable1Predicted(t *testing.T) {
	out, _, code := runBench(t, "-table1", "-p", "8", "-m", "16")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"SR2-Reduction", "CR-AllLocal", "always", "ts > 2m"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Measured(t *testing.T) {
	out, _, code := runBench(t, "-table1", "-measured", "-p", "8", "-m", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "meas before") {
		t.Fatalf("missing measured columns:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	out, _, code := runBench(t, "-fig2")
	if code != 0 || !strings.Contains(out, "[10, 24]") && !strings.Contains(out, "(10, 24)") {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
}

func TestFigure3(t *testing.T) {
	out, _, code := runBench(t, "-fig3", "-p", "8", "-m", "8")
	if code != 0 || !strings.Contains(out, "time saved") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestFigure7PlotAndCSV(t *testing.T) {
	out, _, code := runBench(t, "-fig7", "-p", "16", "-m", "256")
	if code != 0 || !strings.Contains(out, "Figure 7") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	out, _, code = runBench(t, "-fig7", "-csv", "-p", "16", "-m", "256")
	if code != 0 || !strings.Contains(out, "processors,bcast; scan") {
		t.Fatalf("csv exit %d:\n%s", code, out)
	}
}

func TestFigure8(t *testing.T) {
	out, _, code := runBench(t, "-fig8", "-csv", "-p", "16", "-m", "256")
	if code != 0 || !strings.Contains(out, "block size,") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestCrossover(t *testing.T) {
	out, _, code := runBench(t, "-crossover", "-ts", "1024", "-p", "16")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "SS2-Scan") || !strings.Contains(out, "predicted m = 511") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestPolyEval(t *testing.T) {
	out, _, code := runBench(t, "-polyeval", "-p", "8", "-m", "64")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "PolyEval_3") || strings.Contains(out, "WRONG RESULT") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestReport(t *testing.T) {
	out, _, code := runBench(t, "-report", "-p", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "## Reproduced evaluation") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestNoExperimentSelected(t *testing.T) {
	_, errb, code := runBench(t)
	if code != 2 || !strings.Contains(errb, "select an experiment") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero p", []string{"-table1", "-p", "0"}, "-p must be a positive"},
		{"negative p", []string{"-fig7", "-p", "-4"}, "-p must be a positive"},
		{"zero m", []string{"-table1", "-p", "8", "-m", "0"}, "-m must be a positive"},
		{"negative m", []string{"-fig8", "-m", "-1"}, "-m must be a positive"},
		{"zero reps", []string{"-table1", "-reps", "0"}, "-reps must be at least 1"},
		{"bad backend", []string{"-table1", "-backend", "quantum"}, `-backend must be "virtual", "native" or "multiproc"`},
		{"non-pow2 measured table", []string{"-table1", "-measured", "-p", "6"}, "power-of-two"},
		{"bad transport", []string{"-table1", "-transport", "turbo"}, `unknown transport "turbo"`},
		{"copy transport on multiproc", []string{"-algos", "-backend", "multiproc", "-transport", "copy"},
			"a process boundary always copies"},
		{"multiproc unsupported mode", []string{"-table1", "-backend", "multiproc"},
			"-backend multiproc supports -calibrate, -algos and -benchjson"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, errb, code := runBench(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb)
			}
			if !strings.Contains(errb, tc.want) {
				t.Fatalf("stderr %q does not mention %q", errb, tc.want)
			}
		})
	}
}

func TestTable1NativeBackend(t *testing.T) {
	out, _, code := runBench(t, "-table1", "-measured", "-backend", "native",
		"-p", "4", "-m", "8", "-reps", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "native wall-clock") || !strings.Contains(out, "meas before") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTransportCopyNativeBackend(t *testing.T) {
	// -transport copy must swap the native runner onto the deep-copying
	// baseline without changing any result the table reports.
	out, _, code := runBench(t, "-table1", "-measured", "-backend", "native",
		"-transport", "copy", "-p", "4", "-m", "8", "-reps", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "native wall-clock") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestFigure7NativeBackend(t *testing.T) {
	out, _, code := runBench(t, "-fig7", "-csv", "-backend", "native",
		"-p", "4", "-m", "16", "-reps", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "processors,bcast; scan") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestVirtualOnlyModeNotice(t *testing.T) {
	out, errb, code := runBench(t, "-fig2", "-backend", "native")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errb, "-fig2 runs on the virtual machine") {
		t.Fatalf("stderr missing notice: %s", errb)
	}
	if !strings.Contains(out, "P1 = allreduce(+)") {
		t.Fatalf("fig2 output missing:\n%s", out)
	}
}

func TestBenchJSONMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_native.json")
	out, errb, code := runBench(t, "-benchjson", path, "-p", "4", "-reps", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "wrote") {
		t.Fatalf("output:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []exper.NativeBenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	// All 11 rules × 4 block sizes × 2 sides at p=4 (a power of two, so no
	// rule is skipped), plus the algorithm-portfolio sweep: 4 algorithms ×
	// 5 block sizes × 2 sides on each of p=7 and p=8.
	if len(recs) != 88+80 {
		t.Fatalf("got %d records, want %d", len(recs), 88+80)
	}
	algoRows, crossRows := 0, 0
	for _, r := range recs {
		if strings.HasPrefix(r.Rule, "Algo-") && r.Side == "rhs" {
			algoRows++
			if r.MeasCross != 0 || r.PredCross != 0 {
				crossRows++
			}
		}
	}
	if algoRows != 40 {
		t.Fatalf("got %d algorithm rhs rows, want 40", algoRows)
	}
	if crossRows == 0 {
		t.Fatal("no algorithm row carries a crossover")
	}
}

func TestCrossFig(t *testing.T) {
	out, _, code := runBench(t, "-crossfig", "-ts", "1024", "-csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "SS2-Scan crossover") || !strings.Contains(out, "block size,before") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestScalingFlag(t *testing.T) {
	out, _, code := runBench(t, "-scaling", "-p", "16", "-m", "64", "-csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "strong scaling") || !strings.Contains(out, "processors,before,after") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestAppsFlag(t *testing.T) {
	out, _, code := runBench(t, "-apps", "-ts", "100")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "mss strong scaling") || !strings.Contains(out, "samplesort strong scaling") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCalibrateQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "CALIB_native.json")
	out, errb, code := runBench(t, "-calibrate", "-quick", "-reps", "1", "-params-file", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"Calibration", "fitted (ns)", "Break-even validation", "wrote calibration report"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
	rep, err := calib.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "native" || len(rep.Validation) == 0 {
		t.Fatalf("report is not usable: %+v", rep)
	}

	// Round-trip: the report drives a predicted Table 1 run.
	out, errb, code = runBench(t, "-table1", "-params-file", path, "-p", "8", "-m", "16")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "using calibrated parameters from") {
		t.Fatalf("output does not acknowledge the params file:\n%s", out)
	}
}

func TestParamsFileErrors(t *testing.T) {
	if _, errb, code := runBench(t, "-table1", "-params-file", "/nonexistent/calib.json"); code != 1 ||
		!strings.Contains(errb, "collbench:") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, errb, code := runBench(t, "-table1", "-params-file", bad); code != 1 ||
		!strings.Contains(errb, "not a calibration report") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}
