package main

import (
	"bytes"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestTable1Predicted(t *testing.T) {
	out, _, code := runBench(t, "-table1", "-p", "8", "-m", "16")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"SR2-Reduction", "CR-AllLocal", "always", "ts > 2m"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Measured(t *testing.T) {
	out, _, code := runBench(t, "-table1", "-measured", "-p", "8", "-m", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "meas before") {
		t.Fatalf("missing measured columns:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	out, _, code := runBench(t, "-fig2")
	if code != 0 || !strings.Contains(out, "[10, 24]") && !strings.Contains(out, "(10, 24)") {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
}

func TestFigure3(t *testing.T) {
	out, _, code := runBench(t, "-fig3", "-p", "8", "-m", "8")
	if code != 0 || !strings.Contains(out, "time saved") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestFigure7PlotAndCSV(t *testing.T) {
	out, _, code := runBench(t, "-fig7", "-p", "16", "-m", "256")
	if code != 0 || !strings.Contains(out, "Figure 7") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	out, _, code = runBench(t, "-fig7", "-csv", "-p", "16", "-m", "256")
	if code != 0 || !strings.Contains(out, "processors,bcast; scan") {
		t.Fatalf("csv exit %d:\n%s", code, out)
	}
}

func TestFigure8(t *testing.T) {
	out, _, code := runBench(t, "-fig8", "-csv", "-p", "16", "-m", "256")
	if code != 0 || !strings.Contains(out, "block size,") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestCrossover(t *testing.T) {
	out, _, code := runBench(t, "-crossover", "-ts", "1024", "-p", "16")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "SS2-Scan") || !strings.Contains(out, "predicted m = 511") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestPolyEval(t *testing.T) {
	out, _, code := runBench(t, "-polyeval", "-p", "8", "-m", "64")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "PolyEval_3") || strings.Contains(out, "WRONG RESULT") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestReport(t *testing.T) {
	out, _, code := runBench(t, "-report", "-p", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "## Reproduced evaluation") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestNoExperimentSelected(t *testing.T) {
	_, errb, code := runBench(t)
	if code != 2 || !strings.Contains(errb, "select an experiment") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

func TestCrossFig(t *testing.T) {
	out, _, code := runBench(t, "-crossfig", "-ts", "1024", "-csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "SS2-Scan crossover") || !strings.Contains(out, "block size,before") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestScalingFlag(t *testing.T) {
	out, _, code := runBench(t, "-scaling", "-p", "16", "-m", "64", "-csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "strong scaling") || !strings.Contains(out, "processors,before,after") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestAppsFlag(t *testing.T) {
	out, _, code := runBench(t, "-apps", "-ts", "100")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "mss strong scaling") || !strings.Contains(out, "samplesort strong scaling") {
		t.Fatalf("output:\n%s", out)
	}
}
