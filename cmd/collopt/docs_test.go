package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"repro/internal/docscan"
	"repro/internal/lang"
	"repro/internal/rules"
)

// TestDocCommentCoversEveryFlag: each flag collopt defines must be
// mentioned in the command's doc comment.
func TestDocCommentCoversEveryFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("-h: exit %d", code)
	}
	defined := docscan.UsageFlags(errb.String())
	if len(defined) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", errb.String())
	}
	src, err := docscan.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	documented := docscan.Flags(docscan.DocComment(src))
	if missing := docscan.Missing(defined, documented); missing != nil {
		t.Errorf("flags missing from the doc comment: %v", missing)
	}
}

// definedFlags harvests the command's real flag set from its -h output.
func definedFlags(t *testing.T) map[string]bool {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("-h: exit %d", code)
	}
	flags := docscan.UsageFlags(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", errb.String())
	}
	return flags
}

// TestDocsPagesFlagsExist: every -flag that any docs/ page attributes
// to collopt must actually exist, whichever page the example lives on.
func TestDocsPagesFlagsExist(t *testing.T) {
	byPage, err := docscan.DocFlagsInDir("../../docs", "collopt")
	if err != nil {
		t.Fatal(err)
	}
	if len(byPage) == 0 {
		t.Fatal("no docs/ page documents any collopt flags")
	}
	defined := definedFlags(t)
	for page, claimed := range byPage {
		if missing := docscan.Missing(claimed, defined); missing != nil {
			t.Errorf("docs/%s uses collopt flags that do not exist: %v", page, missing)
		}
	}
}

// sparseKeywords are the surface-syntax heads of the sparse stages; a
// doc code fragment mentioning one is claiming program syntax.
var sparseKeywords = []string{"halo(", "allgatherv(", "reduce_scatterv("}

// progTextRE admits only characters the surface syntax uses, so
// schematic fragments like `halo(o1,…,ok)` are skipped while concrete
// examples like `halo(-1,1) ; map inc_t` must parse.
var progTextRE = regexp.MustCompile(`^[a-z0-9_+*#;(), -]+$`)

// quotedRE extracts the "program" argument from a quoted shell example.
var quotedRE = regexp.MustCompile(`"([^"]+)"`)

// sparseProgsIn returns the concrete sparse programs a code fragment
// claims: the quoted parts of a command line, or the fragment itself
// when it is bare program text.
func sparseProgsIn(span string) []string {
	mentions := func(s string) bool {
		for _, kw := range sparseKeywords {
			if strings.Contains(s, kw) {
				return true
			}
		}
		return false
	}
	if !mentions(span) {
		return nil
	}
	var progs []string
	for _, m := range quotedRE.FindAllStringSubmatch(span, -1) {
		if mentions(m[1]) && progTextRE.MatchString(m[1]) {
			progs = append(progs, m[1])
		}
	}
	if progs == nil && progTextRE.MatchString(span) {
		progs = append(progs, span)
	}
	return progs
}

// TestDocsSparseProgramsParse: every concrete sparse-collective program
// the docs or the README quote (halo, allgatherv, reduce_scatterv —
// inline code, fenced blocks, indented examples) must parse with the
// same symbol table the CLI uses. A syntax change that strands a doc
// example fails here, naming the page.
func TestDocsSparseProgramsParse(t *testing.T) {
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	syms.DefineFn(rules.IncTupFn)
	byPage, err := docscan.CodeSpansInDir("../../docs")
	if err != nil {
		t.Fatal(err)
	}
	readme, err := docscan.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	byPage["README.md"] = docscan.CodeSpans(readme)
	parsed := 0
	for page, spans := range byPage {
		for _, span := range spans {
			for _, prog := range sparseProgsIn(span) {
				if _, err := lang.Parse(prog, syms); err != nil {
					t.Errorf("%s: sparse example %q does not parse: %v", page, prog, err)
					continue
				}
				parsed++
			}
		}
	}
	if parsed < 3 {
		t.Errorf("only %d concrete sparse program examples found across docs/ and README.md; the sparse syntax is no longer documented", parsed)
	}
}

// TestReadmeFlagsExist: the README's collopt command lines must use
// real flags.
func TestReadmeFlagsExist(t *testing.T) {
	doc, err := docscan.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	claimed := docscan.DocFlags(doc, "collopt")
	if missing := docscan.Missing(claimed, definedFlags(t)); missing != nil {
		t.Errorf("README.md uses collopt flags that do not exist: %v", missing)
	}
}
