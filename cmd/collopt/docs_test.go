package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/docscan"
)

// TestDocCommentCoversEveryFlag: each flag collopt defines must be
// mentioned in the command's doc comment.
func TestDocCommentCoversEveryFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("-h: exit %d", code)
	}
	defined := docscan.UsageFlags(errb.String())
	if len(defined) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", errb.String())
	}
	src, err := docscan.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	documented := docscan.Flags(docscan.DocComment(src))
	if missing := docscan.Missing(defined, documented); missing != nil {
		t.Errorf("flags missing from the doc comment: %v", missing)
	}
}
