package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/docscan"
)

// TestDocCommentCoversEveryFlag: each flag collopt defines must be
// mentioned in the command's doc comment.
func TestDocCommentCoversEveryFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("-h: exit %d", code)
	}
	defined := docscan.UsageFlags(errb.String())
	if len(defined) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", errb.String())
	}
	src, err := docscan.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	documented := docscan.Flags(docscan.DocComment(src))
	if missing := docscan.Missing(defined, documented); missing != nil {
		t.Errorf("flags missing from the doc comment: %v", missing)
	}
}

// definedFlags harvests the command's real flag set from its -h output.
func definedFlags(t *testing.T) map[string]bool {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("-h: exit %d", code)
	}
	flags := docscan.UsageFlags(errb.String())
	if len(flags) == 0 {
		t.Fatalf("no flags parsed from usage:\n%s", errb.String())
	}
	return flags
}

// TestDocsPagesFlagsExist: every -flag that any docs/ page attributes
// to collopt must actually exist, whichever page the example lives on.
func TestDocsPagesFlagsExist(t *testing.T) {
	byPage, err := docscan.DocFlagsInDir("../../docs", "collopt")
	if err != nil {
		t.Fatal(err)
	}
	if len(byPage) == 0 {
		t.Fatal("no docs/ page documents any collopt flags")
	}
	defined := definedFlags(t)
	for page, claimed := range byPage {
		if missing := docscan.Missing(claimed, defined); missing != nil {
			t.Errorf("docs/%s uses collopt flags that do not exist: %v", page, missing)
		}
	}
}

// TestReadmeFlagsExist: the README's collopt command lines must use
// real flags.
func TestReadmeFlagsExist(t *testing.T) {
	doc, err := docscan.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	claimed := docscan.DocFlags(doc, "collopt")
	if missing := docscan.Missing(claimed, definedFlags(t)); missing != nil {
		t.Errorf("README.md uses collopt flags that do not exist: %v", missing)
	}
}
