package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/calib"
	"repro/internal/rules"
)

func runOpt(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	return runOptStdin(t, "", args...)
}

// runOptStdin runs the CLI with the given stdin contents.
func runOptStdin(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

func TestOptimizesAndVerifies(t *testing.T) {
	out, _, code := runOpt(t, "-ts", "1000", "-m", "16", "bcast ; scan(+) ; scan(+)")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{
		"applicable rules:",
		"BSS-Comcast",
		"applied BSS-Comcast",
		"optimized: bcast; map# repeat(op_comp_bss(+))",
		"verified:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRefusesUnprofitableRewrite(t *testing.T) {
	// Large blocks, tiny start-up: SS2-Scan must not fire.
	out, _, code := runOpt(t, "-ts", "1", "-m", "100000", "scan(*) ; scan(+)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "no profitable rewrite") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "does not improve") {
		t.Fatalf("applicable listing should flag the unprofitable rule:\n%s", out)
	}
}

func TestAllFlagIgnoresCosts(t *testing.T) {
	out, _, code := runOpt(t, "-all", "-ts", "1", "-m", "100000", "scan(*) ; scan(+)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "applied SS2-Scan") {
		t.Fatalf("-all should force the rewrite:\n%s", out)
	}
}

func TestNoRuleApplies(t *testing.T) {
	out, _, code := runOpt(t, "scan(+)")
	if code != 0 || !strings.Contains(out, "no optimization rule applies") {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
}

func TestParseErrorExitCode(t *testing.T) {
	_, errb, code := runOpt(t, "scan(bogus)")
	if code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errb, "unknown operator") {
		t.Fatalf("stderr: %s", errb)
	}
}

func TestUsageOnMissingArgument(t *testing.T) {
	_, errb, code := runOpt(t)
	if code != 2 || !strings.Contains(errb, "usage: collopt") {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
}

// TestProgFlag covers the -prog alternative to the positional argument,
// including "-prog -" reading the program from stdin.
func TestProgFlag(t *testing.T) {
	cases := []struct {
		name    string
		stdin   string
		args    []string
		code    int
		wantOut string
		wantErr string
	}{
		{
			name:    "stdin program",
			stdin:   "bcast ; scan(+) ; scan(+)\n",
			args:    []string{"-ts", "1000", "-m", "16", "-prog", "-"},
			code:    0,
			wantOut: "applied BSS-Comcast",
		},
		{
			name:    "stdin with trailing comment lines",
			stdin:   "scan(*) ; reduce(+) # piped from a generator\n",
			args:    []string{"-ts", "5000", "-prog", "-"},
			code:    0,
			wantOut: "applied SR2-Reduction",
		},
		{
			name:    "prog flag with inline value",
			args:    []string{"-ts", "5000", "-prog", "scan(+) ; reduce(+)"},
			code:    0,
			wantOut: "applied SR-Reduction",
		},
		{
			name:    "stdin parse error exits 1",
			stdin:   "scan(bogus)",
			args:    []string{"-prog", "-"},
			code:    1,
			wantErr: "unknown operator",
		},
		{
			name:    "empty stdin exits 1",
			stdin:   "",
			args:    []string{"-prog", "-"},
			code:    1,
			wantErr: "parse error",
		},
		{
			name:    "both positional and -prog exits 2",
			args:    []string{"-prog", "scan(+)", "reduce(+)"},
			code:    2,
			wantErr: "not both",
		},
		{
			name:    "stdin works with -mpi",
			stdin:   "MPI_Scan (x, y, c, t, MPI_PROD, comm); MPI_Reduce (y, u, c, t, MPI_SUM, root, comm);",
			args:    []string{"-mpi", "-prog", "-"},
			code:    0,
			wantOut: "applied SR2-Reduction",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, errb, code := runOptStdin(t, c.stdin, c.args...)
			if code != c.code {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, c.code, out, errb)
			}
			if c.wantOut != "" && !strings.Contains(out, c.wantOut) {
				t.Errorf("stdout missing %q:\n%s", c.wantOut, out)
			}
			if c.wantErr != "" && !strings.Contains(errb, c.wantErr) {
				t.Errorf("stderr missing %q:\n%s", c.wantErr, errb)
			}
		})
	}
}

func TestBadFlag(t *testing.T) {
	_, _, code := runOpt(t, "-nope", "scan(+)")
	if code != 2 {
		t.Fatalf("exit %d", code)
	}
}

func TestRulesCatalogFlag(t *testing.T) {
	out, _, code := runOpt(t, "-rules")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"SR2-Reduction", "CR-AllLocal", "BM-Mobility", "class Comcast"} {
		if !strings.Contains(out, want) {
			t.Errorf("catalog missing %q", want)
		}
	}
}

func TestExplainFlag(t *testing.T) {
	out, _, code := runOpt(t, "-explain", "-ts", "5000", "scan(+) ; reduce(+)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "SR-Reduction (at stage 0)") || !strings.Contains(out, "⊕ is commutative") {
		t.Fatalf("explain output:\n%s", out)
	}
}

func TestMPIFlag(t *testing.T) {
	out, _, code := runOpt(t, "-mpi",
		"MPI_Scan (x, y, c, t, MPI_PROD, comm); MPI_Reduce (y, u, c, t, MPI_SUM, root, comm);")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "applied SR2-Reduction") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestEmitMPIFlag(t *testing.T) {
	out, _, code := runOpt(t, "-emit-mpi", "-ts", "5000", "scan(*) ; reduce(+)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "MPI-like pseudocode") || !strings.Contains(out, "MPI_Reduce") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestLocalRuleVerifiesOnItsDomain(t *testing.T) {
	// BSR-Local holds only on power-of-two machines; the CLI must
	// verify it there instead of failing on p = 3.
	out, _, code := runOpt(t, "-ts", "5000", "bcast ; scan(+) ; reduce(+)")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "applied BSR-Local") || !strings.Contains(out, "verified:") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestParamsFileDrivesOptimizer(t *testing.T) {
	rep := calib.Report{Backend: "native", Reps: 1,
		Fit: calib.Fit{TsNs: 1200, TwNs: 4, TcNs: 4, Ts: 300, Tw: 1}}
	path := filepath.Join(t.TempDir(), "calib.json")
	if err := calib.WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	out, errb, code := runOpt(t, "-params-file", path, "-p", "8", "-m", "4", "scan(+) ; reduce(+)")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "ts=300 tw=1") || !strings.Contains(out, "(calibrated from "+path+")") {
		t.Fatalf("calibrated parameters not in force:\n%s", out)
	}

	if _, errb, code := runOpt(t, "-params-file", "/nonexistent.json", "scan(+)"); code != 1 ||
		!strings.Contains(errb, "collopt:") {
		t.Fatalf("missing params file: exit %d, stderr: %s", code, errb)
	}
}

func TestSearchFlagBeatsGreedyOnTrap(t *testing.T) {
	out, _, code := runOpt(t, "-search", "scan(*) ; scan(+) ; reduce(+)")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	for _, want := range []string{
		"plan search:",
		"search beats greedy:",
		"greedy derivation (forfeited):",
		"- SS2-Scan @0",
		"search derivation (taken):",
		"+ SR-Reduction @1",
		"optimized: scan(*) ; map pair ; reduce_balanced(op_sr(+)) ; map pi_1",
		"verified:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSearchFlagAgreesOnTie(t *testing.T) {
	out, _, code := runOpt(t, "-search", "scan(+) ; reduce(+)")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "search agrees with the greedy plan") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestSearchBenchFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_search.json")
	out, errb, code := runOpt(t, "-searchbench", path, "-search-cases", "25")
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{"never-worse=true", "all-verified=true", "improved 1/26"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep rules.SearchBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Cases != 26 || !rep.NeverWorse || !rep.AllVerified || rep.Improved < 1 {
		t.Fatalf("report summary off: %+v", rep)
	}
	if rep.Corpus[0].SearchDerivation == nil {
		t.Fatal("the trap's improving derivation must be recorded in the report")
	}
}
