// Command collopt is the optimizer front-end: it parses a program in the
// paper's notation, lists the applicable optimization rules with their
// cost estimates, applies the cost-guided rewriting, verifies the result
// against the original program and prints the outcome.
//
// Usage:
//
//	collopt [flags] "scan(*) ; reduce(+)"
//	echo "scan(*) ; reduce(+)" | collopt [flags] -prog -
//
// Flags:
//
//	-ts N     message start-up time (default 1000)
//	-tw N     per-word transfer time (default 1)
//	-p N      number of processors (default 64)
//	-m N      block size in words (default 64)
//	-prog P   the program; "-" reads it from stdin (alternative to the
//	          positional argument, for shell pipelines)
//	-all      apply every applicable rule, ignoring the cost estimates
//	-verify   check the rewriting on random inputs (default true)
//	-rules    print the rule catalog and exit
//	-mpi      parse the program in the paper's MPI notation
//	-emit-mpi render the optimized program as MPI-like pseudocode
//	-explain  render applications in the paper's rule format
//
//	-cpuprofile FILE / -memprofile FILE  write runtime/pprof profiles of
//	                   the run (see docs/PERF.md)
//
//	-params-file FILE  use the calibrated ts/tw from a collbench -calibrate
//	                   report, so the cost-guided decisions reflect this
//	                   machine instead of the defaults
//
// Example:
//
//	$ collopt -ts 1000 -m 16 "bcast ; scan(+) ; scan(+)"
//	applied BSS-Comcast @0: bcast ; scan(+) ; scan(+)  =>  bcast; map# repeat(op_comp_bss(+))
//	...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/algebra"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/prof"
	"repro/internal/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code; factored out of
// main so the command is testable.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("collopt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ts := fs.Float64("ts", 1000, "message start-up time")
	tw := fs.Float64("tw", 1, "per-word transfer time")
	p := fs.Int("p", 64, "number of processors")
	m := fs.Int("m", 64, "block size in words")
	all := fs.Bool("all", false, "apply every applicable rule, ignoring cost estimates")
	verify := fs.Bool("verify", true, "verify the rewriting on random inputs")
	catalog := fs.Bool("rules", false, "print the rule catalog and exit")
	mpi := fs.Bool("mpi", false, "parse the program in the paper's MPI notation instead of the compact one")
	emitMPI := fs.Bool("emit-mpi", false, "render the optimized program as MPI-like pseudocode")
	explain := fs.Bool("explain", false, "render applications in the paper's rule format")
	progFlag := fs.String("prog", "", `the program; "-" reads it from stdin`)
	paramsFile := fs.String("params-file", "", "load calibrated ts/tw from a collbench -calibrate report")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "collopt: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "collopt: %v\n", err)
		}
	}()
	calibrated := ""
	if *paramsFile != "" {
		rep, err := calib.ReadReport(*paramsFile)
		if err != nil {
			fmt.Fprintf(stderr, "collopt: %v\n", err)
			return 1
		}
		*ts, *tw = rep.Fit.Ts, rep.Fit.Tw
		calibrated = fmt.Sprintf(" (calibrated from %s)", *paramsFile)
	}
	if *catalog {
		fmt.Fprint(stdout, rules.Catalog(true))
		return 0
	}

	src := ""
	switch {
	case *progFlag != "" && fs.NArg() > 0:
		fmt.Fprintln(stderr, "collopt: give the program either positionally or via -prog, not both")
		return 2
	case *progFlag == "-":
		data, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintf(stderr, "collopt: reading stdin: %v\n", err)
			return 1
		}
		src = string(data)
	case *progFlag != "":
		src = *progFlag
	case fs.NArg() == 1:
		src = fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "usage: collopt [flags] \"scan(*) ; reduce(+)\"")
		fmt.Fprintln(stderr, "       echo \"scan(*) ; reduce(+)\" | collopt [flags] -prog -")
		fs.PrintDefaults()
		return 2
	}
	parse := lang.Parse
	if *mpi {
		parse = lang.ParseMPI
	}
	t, err := parse(src, nil)
	if err != nil {
		fmt.Fprintf(stderr, "collopt: parse error: %v\n", err)
		return 1
	}
	prog := core.FromTerm(t)
	mach := core.Machine{Ts: *ts, Tw: *tw, P: *p, M: *m}

	fmt.Fprintf(stdout, "program:  %s\n", prog)
	fmt.Fprintf(stdout, "machine:  ts=%.4g tw=%.4g p=%d m=%d%s\n", *ts, *tw, *p, *m, calibrated)
	fmt.Fprintf(stdout, "estimate: %.0f\n\n", prog.Estimate(mach))

	apps := prog.Applicable(mach)
	if len(apps) == 0 {
		fmt.Fprintln(stdout, "no optimization rule applies")
		return 0
	}
	fmt.Fprintln(stdout, "applicable rules:")
	for _, a := range apps {
		verdict := "improves"
		if a.CostAfter >= a.CostBefore {
			verdict = "does not improve"
		}
		fmt.Fprintf(stdout, "  %-14s @%d  %10.0f -> %10.0f  (%s)\n",
			a.Rule, a.Pos, a.CostBefore, a.CostAfter, verdict)
	}
	fmt.Fprintln(stdout)

	var opt core.Optimization
	if *all {
		opt = prog.OptimizeExhaustively(algebra.Default(), *p)
		opt.EstimateBefore = prog.Estimate(mach)
		opt.EstimateAfter = opt.Program.Estimate(mach)
	} else {
		opt = prog.Optimize(mach)
	}
	if len(opt.Applications) == 0 {
		fmt.Fprintln(stdout, "cost-guided engine: no profitable rewrite at these parameters")
		return 0
	}
	for _, a := range opt.Applications {
		if *explain {
			fmt.Fprint(stdout, rules.FormatApplication(a))
		} else {
			fmt.Fprintf(stdout, "applied %s\n", a)
		}
	}
	fmt.Fprintf(stdout, "\noptimized: %s\n", opt.Program)
	fmt.Fprintf(stdout, "estimate:  %.0f -> %.0f (%.2fx)\n",
		opt.EstimateBefore, opt.EstimateAfter, opt.EstimateBefore/opt.EstimateAfter)
	if *emitMPI {
		fmt.Fprintf(stdout, "\nMPI-like pseudocode:\n%s", lang.FormatMPI(opt.Program.Term()))
	}

	if *verify {
		cfg := rules.VerifyConfig{Seed: 1, BlockWords: 4}
		// The Local rules compute f^(log p) by repeated squaring and
		// hold only on power-of-two machines; verify them on their
		// domain.
		for _, a := range opt.Applications {
			if r, ok := rules.ByName(a.Rule); ok && r.Class == "Local" {
				cfg.Pow2Only = true
			}
		}
		if err := prog.Verify(opt.Program, cfg); err != nil {
			fmt.Fprintf(stderr, "collopt: VERIFICATION FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "verified:  original and optimized programs agree on random inputs")
	}
	return 0
}
