// Command collopt is the optimizer front-end: it parses a program in the
// paper's notation, lists the applicable optimization rules with their
// cost estimates, applies the cost-guided rewriting, verifies the result
// against the original program and prints the outcome.
//
// Usage:
//
//	collopt [flags] "scan(*) ; reduce(+)"
//	echo "scan(*) ; reduce(+)" | collopt [flags] -prog -
//
// Flags:
//
//	-ts N     message start-up time (default 1000)
//	-tw N     per-word transfer time (default 1)
//	-p N      number of processors (default 64)
//	-m N      block size in words (default 64)
//	-prog P   the program; "-" reads it from stdin (alternative to the
//	          positional argument, for shell pipelines)
//	-all      apply every applicable rule, ignoring the cost estimates
//	-search   optimize with the global plan search (bounded
//	          branch-and-bound over all rule-application sequences,
//	          never worse than greedy); when the searched plan beats the
//	          greedy one, the derivation diff is printed
//	-select   auto-select collective algorithms: rewrites are scored with
//	          the calibrated portfolio model (docs/ALGORITHMS.md) and the
//	          chosen algorithm of every eligible reduction is printed;
//	          composes with -search
//	-verify   check the rewriting on random inputs (default true)
//	-rules    print the rule catalog and exit
//	-mpi      parse the program in the paper's MPI notation
//	-emit-mpi render the optimized program as MPI-like pseudocode
//	-explain  render applications in the paper's rule format
//
//	-searchbench FILE  run the search-vs-greedy benchmark (the handcrafted
//	                   greedy trap plus a seeded random corpus at the
//	                   -ts/-tw/-p/-m machine), write BENCH_search.json to
//	                   FILE and exit non-zero unless search was never
//	                   worse, improved somewhere, and every searched plan
//	                   verified
//	-search-cases N    corpus size for -searchbench (default 200)
//	-search-seed N     corpus seed for -searchbench (default 1)
//
//	-cpuprofile FILE / -memprofile FILE  write runtime/pprof profiles of
//	                   the run (see docs/PERF.md)
//
//	-params-file FILE  use the calibrated ts/tw from a collbench -calibrate
//	                   report, so the cost-guided decisions reflect this
//	                   machine instead of the defaults
//
// Example:
//
//	$ collopt -ts 1000 -m 16 "bcast ; scan(+) ; scan(+)"
//	applied BSS-Comcast @0: bcast ; scan(+) ; scan(+)  =>  bcast; map# repeat(op_comp_bss(+))
//	...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/algebra"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lang"
	"repro/internal/prof"
	"repro/internal/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code; factored out of
// main so the command is testable.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("collopt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ts := fs.Float64("ts", 1000, "message start-up time")
	tw := fs.Float64("tw", 1, "per-word transfer time")
	p := fs.Int("p", 64, "number of processors")
	m := fs.Int("m", 64, "block size in words")
	all := fs.Bool("all", false, "apply every applicable rule, ignoring cost estimates")
	search := fs.Bool("search", false, "optimize with the global plan search instead of the greedy engine")
	selectAlgos := fs.Bool("select", false, "auto-select collective algorithms from the calibrated portfolio")
	searchBench := fs.String("searchbench", "", "run the search-vs-greedy benchmark and write BENCH_search.json to this file")
	searchCases := fs.Int("search-cases", 200, "corpus size for -searchbench")
	searchSeed := fs.Int64("search-seed", 1, "corpus seed for -searchbench")
	verify := fs.Bool("verify", true, "verify the rewriting on random inputs")
	catalog := fs.Bool("rules", false, "print the rule catalog and exit")
	mpi := fs.Bool("mpi", false, "parse the program in the paper's MPI notation instead of the compact one")
	emitMPI := fs.Bool("emit-mpi", false, "render the optimized program as MPI-like pseudocode")
	explain := fs.Bool("explain", false, "render applications in the paper's rule format")
	progFlag := fs.String("prog", "", `the program; "-" reads it from stdin`)
	paramsFile := fs.String("params-file", "", "load calibrated ts/tw from a collbench -calibrate report")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "collopt: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "collopt: %v\n", err)
		}
	}()
	calibrated := ""
	if *paramsFile != "" {
		rep, err := calib.ReadReport(*paramsFile)
		if err != nil {
			fmt.Fprintf(stderr, "collopt: %v\n", err)
			return 1
		}
		*ts, *tw = rep.Fit.Ts, rep.Fit.Tw
		calibrated = fmt.Sprintf(" (calibrated from %s)", *paramsFile)
	}
	if *catalog {
		fmt.Fprint(stdout, rules.Catalog(true))
		return 0
	}
	if *searchBench != "" {
		return runSearchBench(stdout, stderr, *searchBench, *searchSeed, *searchCases,
			cost.Params{Ts: *ts, Tw: *tw, P: *p, M: *m})
	}

	src := ""
	switch {
	case *progFlag != "" && fs.NArg() > 0:
		fmt.Fprintln(stderr, "collopt: give the program either positionally or via -prog, not both")
		return 2
	case *progFlag == "-":
		data, err := io.ReadAll(stdin)
		if err != nil {
			fmt.Fprintf(stderr, "collopt: reading stdin: %v\n", err)
			return 1
		}
		src = string(data)
	case *progFlag != "":
		src = *progFlag
	case fs.NArg() == 1:
		src = fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "usage: collopt [flags] \"scan(*) ; reduce(+)\"")
		fmt.Fprintln(stderr, "       echo \"scan(*) ; reduce(+)\" | collopt [flags] -prog -")
		fs.PrintDefaults()
		return 2
	}
	parse := lang.Parse
	if *mpi {
		parse = lang.ParseMPI
	}
	// The generator fns ride along so the documented sparse examples
	// (map inc, map inc_t after a halo) parse from the shell too.
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	syms.DefineFn(rules.IncTupFn)
	t, err := parse(src, syms)
	if err != nil {
		fmt.Fprintf(stderr, "collopt: parse error: %v\n", err)
		return 1
	}
	prog := core.FromTerm(t)
	mach := core.Machine{Ts: *ts, Tw: *tw, P: *p, M: *m}

	fmt.Fprintf(stdout, "program:  %s\n", prog)
	fmt.Fprintf(stdout, "machine:  ts=%.4g tw=%.4g p=%d m=%d%s\n", *ts, *tw, *p, *m, calibrated)
	fmt.Fprintf(stdout, "estimate: %.0f\n\n", prog.Estimate(mach))

	apps := prog.Applicable(mach)
	if len(apps) == 0 && !*selectAlgos {
		fmt.Fprintln(stdout, "no optimization rule applies")
		return 0
	}
	if len(apps) > 0 {
		fmt.Fprintln(stdout, "applicable rules:")
		for _, a := range apps {
			verdict := "improves"
			if a.CostAfter >= a.CostBefore {
				verdict = "does not improve"
			}
			fmt.Fprintf(stdout, "  %-14s @%d  %10.0f -> %10.0f  (%s)\n",
				a.Rule, a.Pos, a.CostBefore, a.CostAfter, verdict)
		}
		fmt.Fprintln(stdout)
	}

	var opt core.Optimization
	switch {
	case *all:
		opt = prog.OptimizeExhaustively(algebra.Default(), *p)
		opt.EstimateBefore = prog.Estimate(mach)
		opt.EstimateAfter = opt.Program.Estimate(mach)
	case *search:
		opt, _ = prog.OptimizeOpts(mach, core.OptimizeOptions{Search: true, Auto: *selectAlgos})
		fmt.Fprintf(stdout, "plan search: %d nodes, %d memo hits, %d pruned, exhausted=%v\n",
			opt.Search.Nodes, opt.Search.MemoHits, opt.Search.Pruned, opt.Search.Exhausted)
		if opt.Search.Improved() {
			// The derivation diff: what the greedy engine would have done
			// and what the search found instead.
			greedy, _ := prog.OptimizeOpts(mach, core.OptimizeOptions{Auto: *selectAlgos})
			fmt.Fprintf(stdout, "search beats greedy: %.0f -> %.0f (gain %.0f)\n",
				greedy.EstimateAfter, opt.Search.BestCost, greedy.EstimateAfter-opt.Search.BestCost)
			fmt.Fprintln(stdout, "greedy derivation (forfeited):")
			for _, a := range greedy.Applications {
				fmt.Fprintf(stdout, "  - %s\n", a)
			}
			fmt.Fprintf(stdout, "  = %s\n", greedy.Program)
			fmt.Fprintln(stdout, "search derivation (taken):")
			for _, a := range opt.Applications {
				fmt.Fprintf(stdout, "  + %s\n", a)
			}
			fmt.Fprintf(stdout, "  = %s\n", opt.Program)
		} else {
			fmt.Fprintln(stdout, "search agrees with the greedy plan")
		}
		fmt.Fprintln(stdout)
	default:
		opt, _ = prog.OptimizeOpts(mach, core.OptimizeOptions{Auto: *selectAlgos})
	}
	if *selectAlgos {
		if len(opt.Selection) == 0 {
			fmt.Fprintln(stdout, "selection: no eligible reduction stages (elementwise, unbalanced)")
		} else {
			fmt.Fprintln(stdout, "selected algorithms:")
			for _, sl := range opt.Selection {
				fmt.Fprintf(stdout, "  %s\n", sl)
			}
		}
		fmt.Fprintln(stdout)
	}
	if len(opt.Applications) == 0 {
		fmt.Fprintln(stdout, "cost-guided engine: no profitable rewrite at these parameters")
		return 0
	}
	for _, a := range opt.Applications {
		if *explain {
			fmt.Fprint(stdout, rules.FormatApplication(a))
		} else {
			fmt.Fprintf(stdout, "applied %s\n", a)
		}
	}
	fmt.Fprintf(stdout, "\noptimized: %s\n", opt.Program)
	fmt.Fprintf(stdout, "estimate:  %.0f -> %.0f (%.2fx)\n",
		opt.EstimateBefore, opt.EstimateAfter, opt.EstimateBefore/opt.EstimateAfter)
	if *emitMPI {
		fmt.Fprintf(stdout, "\nMPI-like pseudocode:\n%s", lang.FormatMPI(opt.Program.Term()))
	}

	if *verify {
		cfg := rules.VerifyConfig{Seed: 1, BlockWords: 4}
		// The Local rules compute f^(log p) by repeated squaring and
		// hold only on power-of-two machines; verify them on their
		// domain.
		for _, a := range opt.Applications {
			if r, ok := rules.ByName(a.Rule); ok && r.Class == "Local" {
				cfg.Pow2Only = true
			}
		}
		if err := prog.Verify(opt.Program, cfg); err != nil {
			fmt.Fprintf(stderr, "collopt: VERIFICATION FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "verified:  original and optimized programs agree on random inputs")
	}
	return 0
}

// runSearchBench is the -searchbench mode: run the corpus, write the
// report, print the summary, and fail unless search was never worse,
// improved somewhere, and every searched plan verified.
func runSearchBench(stdout, stderr io.Writer, path string, seed int64, cases int, p cost.Params) int {
	rep, benchErr := rules.RunSearchBench(seed, cases, p, rules.SearchConfig{})
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "collopt: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "collopt: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "search bench: %d cases at ts=%g tw=%g p=%d m=%d (seed %d)\n",
		rep.Cases, p.Ts, p.Tw, p.P, p.M, seed)
	fmt.Fprintf(stdout, "  improved %d/%d  never-worse=%v  all-verified=%v\n",
		rep.Improved, rep.Cases, rep.NeverWorse, rep.AllVerified)
	fmt.Fprintf(stdout, "  max gain %.0f  total gain %.0f  mean gain %.2f%% (improved cases)\n",
		rep.MaxGain, rep.TotalGain, rep.MeanGainPct)
	fmt.Fprintf(stdout, "  mean plan latency: greedy %.0fµs, search %.0fµs\n",
		rep.MeanGreedyMicros, rep.MeanSearchMicros)
	fmt.Fprintf(stdout, "  report written to %s\n", path)
	if benchErr != nil {
		fmt.Fprintf(stderr, "collopt: searchbench: %v\n", benchErr)
		return 1
	}
	return 0
}
