package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunProgConforms drives the replay mode end to end: a small program
// swept under one profile must conform and exit 0.
func TestRunProgConforms(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-prog", "bcast ; scan(+)", "-p", "4", "-profile", "delay", "-seeds", "2",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "conformed") {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
}

// TestRunRandomConforms runs a tiny randomized sweep.
func TestRunRandomConforms(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-trials", "2", "-p", "4", "-profile", "reorder", "-seeds", "1",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "conformed") {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
}

// TestVerboseReportsEveryRun checks -v prints per-run ok lines.
func TestVerboseReportsEveryRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-prog", "gather ; scatter", "-p", "3", "-profile", "loss", "-seeds", "1", "-v",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok   prog") {
		t.Fatalf("verbose run line missing:\n%s", out.String())
	}
}

// TestTransportSweepConforms swaps the native transport under the fault
// schedule: under every profile the copying transport and the zero-copy
// default must both conform — the "both" sweep doubles the run count,
// which the summary line makes visible.
func TestTransportSweepConforms(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-prog", "reduce(+) ; bcast", "-p", "4", "-profile", "all",
		"-seeds", "1", "-transport", "both",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "2 transports") {
		t.Fatalf("summary does not count both transports:\n%s", out.String())
	}
}

// Usage errors must exit 2 without running anything.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-nosuchflag"}},
		{"positional args", []string{"bcast"}},
		{"unknown profile", []string{"-profile", "nosuch"}},
		{"unknown transport", []string{"-transport", "warp"}},
		{"unparsable prog", []string{"-prog", "scan("}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, errOut.String())
			}
		})
	}
}
