// Command collchaos drives the fault-injection conformance harness from
// the shell: programs over the rule grammar run on the chaos-wrapped
// native backend — per-link delays, bounded reorder, duplicates,
// one-shot drops with retry — and their results are compared bitwise
// against a fault-free run and, modulo undetermined positions, against
// the functional semantics.
//
// Usage:
//
//	collchaos -rules                        sweep every rule's LHS and RHS
//	collchaos -prog "bcast ; scan(+)"       run one program (reproducers)
//	collchaos                               randomized program sweep
//
// Common flags: -p ranks, -m words per block, -profile NAME|all, -seed
// BASE, -seeds COUNT (seeds BASE..BASE+COUNT-1), -trials N random
// programs, -transport zerocopy|copy|both to pick the native payload
// discipline the faults run over, -v to report every run instead of just
// failures. A failing
// randomized or explicit run is shrunk to a minimal case and reported
// as a replayable -prog command line, so a CI failure pastes straight
// back into a terminal.
//
// Exit status: 0 all runs conformed, 1 a divergence or hang was found,
// 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/algebra"
	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/lang"
	"repro/internal/rules"
	"repro/internal/term"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code; factored out of
// main so the command is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("collchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		p        = fs.Int("p", 8, "number of ranks")
		m        = fs.Int("m", 1, "words per block")
		profName = fs.String("profile", "all", "fault profile name, or \"all\"")
		seed     = fs.Int64("seed", 0, "base fault seed")
		seeds    = fs.Int("seeds", 5, "seeds per (program, profile): seed..seed+seeds-1")
		trials   = fs.Int("trials", 20, "random programs in the default sweep")
		rulesRun = fs.Bool("rules", false, "sweep every optimization rule's LHS and RHS")
		progSrc  = fs.String("prog", "", "explicit program to run (surface syntax)")
		trName   = fs.String("transport", "zerocopy", "native transport under test: zerocopy, copy, or \"both\"")
		verbose  = fs.Bool("v", false, "report every run, not just failures")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "collchaos: unexpected arguments %v\n", fs.Args())
		return 2
	}
	profiles, err := resolveProfiles(*profName)
	if err != nil {
		fmt.Fprintf(stderr, "collchaos: %v\n", err)
		return 2
	}
	transports, err := resolveTransports(*trName)
	if err != nil {
		fmt.Fprintf(stderr, "collchaos: %v\n", err)
		return 2
	}
	h := &harness{
		out: stdout, verbose: *verbose,
		p: *p, m: *m, profiles: profiles, transports: transports,
		seed: *seed, seeds: *seeds,
	}
	switch {
	case *progSrc != "":
		return h.runProg(stderr, *progSrc)
	case *rulesRun:
		return h.runRules()
	default:
		return h.runRandom(*trials)
	}
}

func resolveProfiles(name string) ([]chaos.Profile, error) {
	if name == "all" {
		return chaos.Profiles(), nil
	}
	prof, ok := chaos.ByName(name)
	if !ok {
		return nil, fmt.Errorf("no profile named %q (have %v)", name, chaos.Names())
	}
	return []chaos.Profile{prof}, nil
}

// resolveTransports maps the -transport flag to the native transport
// modes each case runs under. "both" sweeps zero-copy and copy — the two
// aliasing regimes a duplicate-and-retransmit fault schedule can exercise.
func resolveTransports(name string) ([]backend.TransportMode, error) {
	if name == "both" {
		return []backend.TransportMode{backend.TransportZeroCopy, backend.TransportCopy}, nil
	}
	tr, err := backend.ParseTransport(name)
	if err != nil {
		return nil, fmt.Errorf("%v, or \"both\"", err)
	}
	return []backend.TransportMode{tr}, nil
}

type harness struct {
	out        io.Writer
	verbose    bool
	p, m       int
	profiles   []chaos.Profile
	transports []backend.TransportMode
	seed       int64
	seeds      int
	runs       int
}

// blocks builds one deterministic m-word block per rank — the same
// inputs as the conformance tests.
func blocks(p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	for r := range in {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64((r*7+j*3)%5 + 1)
		}
		in[r] = b
	}
	return in
}

// inputsFor adapts the inputs to the program: a leading scatter consumes
// a p-component list on rank 0, a leading reduce_scatterv a full
// ΣCounts-word vector per rank, and a leading allgatherv the ragged
// counts[r]-word blocks.
func inputsFor(prog term.Seq, p, m int) []algebra.Value {
	if len(prog) > 0 {
		switch st := prog[0].(type) {
		case term.Scatter:
			in := make([]algebra.Value, p)
			list := make(algebra.Tuple, p)
			copy(list, blocks(p, m))
			in[0] = list
			for r := 1; r < p; r++ {
				in[r] = algebra.Scalar(float64(-r))
			}
			return in
		case term.ReduceScatterV:
			total := term.SumCounts(st.Counts)
			in := make([]algebra.Value, p)
			for r := range in {
				b := make(algebra.Vec, total)
				for j := range b {
					b[j] = float64((r*7+j*3)%5 + 1)
				}
				in[r] = b
			}
			return in
		case term.AllGatherV:
			in := make([]algebra.Value, p)
			for r := range in {
				cnt := 0
				if r < len(st.Counts) {
					cnt = st.Counts[r]
				}
				b := make(algebra.Vec, cnt)
				for j := range b {
					b[j] = float64((r*7+j*3)%5 + 1)
				}
				in[r] = b
			}
			return in
		}
	}
	return blocks(p, m)
}

// check runs one case under one transport and returns the first
// divergence (or hang, surfaced as a panic) as an error.
func (h *harness) check(c chaos.Case, tr backend.TransportMode) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	h.runs++
	in := inputsFor(c.Prog, c.P, c.M)
	want, _ := core.ExecNative(c.Prog, backend.New(c.P), in)
	got := chaos.RunNativeTransport(c.Prog, c.P, c.Profile, c.Seed, in, tr)
	sem := term.Eval(c.Prog, in)
	for r := 0; r < c.P; r++ {
		if !algebra.Equal(want[r], got[r]) {
			return fmt.Errorf("rank %d: chaos %v, fault-free %v", r, got[r], want[r])
		}
		if !algebra.EqualApproxModuloUndef(sem[r], got[r], 1e-9) {
			return fmt.Errorf("rank %d: chaos %v, semantics %v", r, got[r], sem[r])
		}
	}
	return nil
}

// sweep checks one program across the profile and seed ranges; on
// failure it shrinks and reports the minimal reproducer.
func (h *harness) sweep(label string, prog term.Seq, p int) bool {
	for _, tr := range h.transports {
		for _, prof := range h.profiles {
			for s := h.seed; s < h.seed+int64(h.seeds); s++ {
				c := chaos.Case{Prog: prog, P: p, M: h.m, Profile: prof, Seed: s}
				err := h.check(c, tr)
				if err == nil {
					if h.verbose {
						fmt.Fprintf(h.out, "ok   %-18s %s/%s/seed=%d p=%d m=%d\n", label, prof.Name, tr, s, p, h.m)
					}
					continue
				}
				fmt.Fprintf(h.out, "FAIL %s under %s/%s/seed=%d: %v\n", label, prof.Name, tr, s, err)
				min := chaos.Shrink(c, func(cand chaos.Case) bool { return h.check(cand, tr) != nil })
				replay := min.Repro()
				if tr != backend.TransportZeroCopy {
					replay += fmt.Sprintf(" -transport %s", tr)
				}
				fmt.Fprintf(h.out, "  minimal: %s\n  replay:  %s\n", min, replay)
				return false
			}
		}
	}
	return true
}

// ruleLHS is one rule's left-hand side for the -rules sweep. Sizes, when
// set, pins the machine sizes the program runs at (counts vectors only
// run at their own length); nil means the class-default sweep.
type ruleLHS struct {
	Rule  string
	LHS   term.Seq
	Sizes []int
}

// extensionLHS are the extension and sparse rules' left-hand sides (the
// Table 1 patterns cover the paper rules).
func extensionLHS() []ruleLHS {
	counts4 := []int{2, 0, 1, 1}
	counts6 := []int{0, 3, 0, 1, 2, 0}
	return []ruleLHS{
		{Rule: "RB-AllReduce", LHS: term.Seq{term.Reduce{Op: algebra.Add}, term.Bcast{}}},
		{Rule: "AB-AllReduce", LHS: term.Seq{term.Reduce{Op: algebra.Add, All: true}, term.Bcast{}}},
		{Rule: "BB-Bcast", LHS: term.Seq{term.Bcast{}, term.Bcast{}}},
		{Rule: "BM-Mobility", LHS: term.Seq{term.Bcast{}, term.Map{F: rules.IncFn}}},
		{Rule: "MM-Local", LHS: term.Seq{term.Map{F: rules.IncFn}, term.Map{F: rules.IncFn}}},
		{Rule: "GS-Id", LHS: term.Seq{term.Gather{}, term.Scatter{}}},
		{Rule: "SG-Id", LHS: term.Seq{term.Scatter{}, term.Gather{}}},
		{Rule: "HH-Combine", LHS: term.Seq{
			term.Halo{H: &term.Hood{Offsets: []int{1, 2}}},
			term.Halo{H: &term.Hood{Offsets: []int{0, 3}}},
		}},
		{Rule: "MH-Mobility", LHS: term.Seq{
			term.Map{F: rules.IncFn},
			term.Halo{H: &term.Hood{Offsets: []int{-1, 1}}},
		}},
		{Rule: "RSAG-AllReduce", Sizes: []int{4}, LHS: term.Seq{
			term.ReduceScatterV{Op: algebra.Add, Counts: counts4},
			term.AllGatherV{Counts: counts4},
		}},
		{Rule: "RSAG-AllReduce", Sizes: []int{6}, LHS: term.Seq{
			term.ReduceScatterV{Op: algebra.Max, Counts: counts6},
			term.AllGatherV{Counts: counts6},
		}},
	}
}

// runRules sweeps every rule's LHS and rewritten RHS, Table 1 and
// extensions alike, on power-of-two and (where the rule allows)
// non-power-of-two sizes.
func (h *harness) runRules() int {
	var jobs []ruleLHS
	for _, pat := range exper.Patterns() {
		jobs = append(jobs, ruleLHS{Rule: pat.Rule, LHS: term.Compose(pat.LHS.Term())})
	}
	jobs = append(jobs, extensionLHS()...)
	failures := 0
	for _, j := range jobs {
		r, ok := rules.ByName(j.Rule)
		if !ok {
			fmt.Fprintf(h.out, "FAIL no rule named %s\n", j.Rule)
			failures++
			continue
		}
		sizes := j.Sizes
		if sizes == nil {
			sizes = []int{4, 8}
			if r.Class != "Local" {
				sizes = []int{4, 6}
			}
		}
		for _, p := range sizes {
			eng := rules.NewEngine()
			eng.Rules = []rules.Rule{r}
			eng.Env.P = p
			opt, apps := eng.Optimize(j.LHS)
			if len(apps) == 0 {
				fmt.Fprintf(h.out, "FAIL rule %s did not apply to %s at p=%d\n", j.Rule, j.LHS, p)
				failures++
				continue
			}
			if !h.sweep(j.Rule+"/lhs", j.LHS, p) {
				failures++
			}
			if rhs := term.Compose(opt); len(rhs) > 0 {
				if !h.sweep(j.Rule+"/rhs", rhs, p) {
					failures++
				}
			}
		}
	}
	return h.summary(failures)
}

// runProg parses and sweeps one explicit program — the replay mode the
// shrinker's reproducer lines point at.
func (h *harness) runProg(stderr io.Writer, src string) int {
	syms := lang.NewSymbols()
	syms.DefineFn(rules.IncFn)
	syms.DefineFn(rules.IncTupFn)
	t, err := lang.Parse(src, syms)
	if err != nil {
		fmt.Fprintf(stderr, "collchaos: bad -prog: %v\n", err)
		return 2
	}
	failures := 0
	if !h.sweep("prog", term.Compose(t), h.p) {
		failures++
	}
	return h.summary(failures)
}

// runRandom is the default mode: random programs from the shared
// generator, profiles round-robin.
func (h *harness) runRandom(trials int) int {
	rng := rand.New(rand.NewSource(h.seed + 1))
	failures := 0
	for trial := 0; trial < trials; trial++ {
		// Every third trial draws from the sparse grammar — halo chains
		// and V-collectives with counts pinned to the machine size.
		prog := rules.RandProgram(rng, 6)
		label := fmt.Sprintf("random#%d", trial)
		if trial%3 == 2 {
			prog = rules.RandSparseProgram(rng, h.p)
			label = fmt.Sprintf("sparse#%d", trial)
		}
		if !h.sweep(label, prog, h.p) {
			failures++
		}
	}
	return h.summary(failures)
}

func (h *harness) summary(failures int) int {
	if failures > 0 {
		fmt.Fprintf(h.out, "collchaos: %d failure(s) in %d runs\n", failures, h.runs)
		return 1
	}
	fmt.Fprintf(h.out, "collchaos: all %d runs conformed (%d profiles, %d transports, %d seeds)\n",
		h.runs, len(h.profiles), len(h.transports), h.seeds)
	return 0
}
