// Maximum prefix sum — a data-parallel kernel whose optimization needs
// the tropical (max/+) instance of rule SR2-Reduction.
//
// The maximum prefix sum of a sequence x1…xn is max_k (x1 + … + xk): in
// the framework it is literally
//
//	scan(+) ; reduce(max)
//
// and because + distributes over max — a + max(b,c) = max(a+b, a+c) —
// rule SR2-Reduction fuses the two collectives into a single reduction
// over pairs, halving the number of communication start-ups. This is the
// same algebraic trick behind the asymptotically optimal
// maximum-segment-sum derivations the paper cites ([7], [8]).
//
// Run with:
//
//	go run ./examples/maxprefix
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rules"
)

func main() {
	mps := core.NewProgram().Scan(algebra.Add).Reduce(algebra.Max)
	mach := core.Machine{Ts: 2000, Tw: 1, P: 32, M: 1}

	fmt.Printf("maximum prefix sum: %s\n", mps)
	opt := mps.Optimize(mach)
	if len(opt.Applications) != 1 || opt.Applications[0].Rule != "SR2-Reduction" {
		log.Fatalf("expected SR2-Reduction, got %v", opt.Applications)
	}
	fmt.Printf("optimized:          %s\n", opt.Program)
	fmt.Printf("estimate:           %.0f -> %.0f\n\n", opt.EstimateBefore, opt.EstimateAfter)

	if err := mps.Verify(opt.Program, rules.VerifyConfig{Seed: 7}); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	// A concrete instance: one element per processor.
	rng := rand.New(rand.NewSource(99))
	in := make([]algebra.Value, mach.P)
	seq := make([]float64, mach.P)
	for i := range in {
		seq[i] = float64(rng.Intn(21) - 10)
		in[i] = algebra.Scalar(seq[i])
	}
	fmt.Printf("sequence: %v\n", seq)

	outB, resB := mps.Run(mach, in)
	outA, resA := opt.Program.Run(mach, in)

	// Sequential reference.
	best, sum := seq[0], 0.0
	for _, x := range seq {
		sum += x
		if sum > best {
			best = sum
		}
	}
	if !algebra.Equal(outB[0], algebra.Scalar(best)) || !algebra.Equal(outA[0], algebra.Scalar(best)) {
		log.Fatalf("wrong result: %v / %v, want %g", outB[0], outA[0], best)
	}
	fmt.Printf("maximum prefix sum = %g (both versions)\n", best)
	fmt.Printf("measured: %.0f -> %.0f (%.2fx faster)\n",
		resB.Makespan, resA.Makespan, resB.Makespan/resA.Makespan)
}
