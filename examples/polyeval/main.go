// Polynomial evaluation — the case study of §5 of the paper.
//
// The polynomial a1·x + a2·x² + … + an·xⁿ is evaluated at m points, with
// coefficient ai held by processor i−1 and the point list on the first
// processor. The example walks the paper's derivation:
//
//	PolyEval_1 = bcast ; scan(*) ; map2(×) as ; reduce(+)      (spec)
//	PolyEval_2 = bcast ; map# op_poly ; map2(×) as ; reduce(+) (BS-Comcast)
//	PolyEval_3 = bcast ; map2#(op_new as) ; reduce(+)          (fused locals)
//
// and measures all three — plus the cost-optimal comcast variant the
// paper shows to be slower — across machine sizes, reproducing the
// qualitative content of Figures 7 and 8 in the polynomial setting.
//
// Run with:
//
//	go run ./examples/polyeval
package main

import (
	"fmt"
	"log"

	"repro/internal/exper"
)

func main() {
	const mPoints = 512
	ts, tw := 5000.0, 1.0
	fmt.Printf("polynomial evaluation at %d points, ts=%g tw=%g\n\n", mPoints, ts, tw)

	fmt.Printf("%6s %14s %14s %14s %14s\n",
		"p", "PolyEval_1", "PolyEval_2", "PolyEval_3", "comcast-opt")
	for _, p := range []int{4, 8, 16, 32, 64} {
		pe := exper.NewPolyEval(2024, p, mPoints)
		results := pe.Run(ts, tw)
		times := map[string]float64{}
		for _, r := range results {
			if !r.Correct {
				log.Fatalf("p=%d: %s produced wrong values", p, r.Name)
			}
			times[r.Name] = r.Makespan
		}
		fmt.Printf("%6d %14.0f %14.0f %14.0f %14.0f\n", p,
			times["PolyEval_1 (bcast; scan)"],
			times["PolyEval_2 (BS-Comcast)"],
			times["PolyEval_3 (fused locals)"],
			times["comcast (cost-optimal)"])
	}

	fmt.Println("\nderivation for p = 8:")
	pe := exper.NewPolyEval(2024, 8, mPoints)
	fmt.Printf("  PolyEval_1 = %s\n", pe.Program1())
	fmt.Printf("  PolyEval_2 = %s   (rule BS-Comcast)\n", pe.Program2())
	fmt.Printf("  PolyEval_3 = %s   (local stages fused)\n", pe.Program3())
	fmt.Println("\nAll variants verified against direct (Horner) evaluation.")
}
