// Maximum segment sum and friends — collective-only application
// programming in the style the paper's introduction advocates (§1: whole
// application classes "based on exclusively collective operations,
// without messing around with individual send-receive statements").
//
// The maximum segment sum is the flagship example of the paper's
// auxiliary-variable technique at the application level: the quantity is
// not combinable across processor boundaries by itself, but the 4-tuple
// (mss, max prefix, max suffix, total) is — one allreduce computes it.
// The same trick drives the statistics (variance via (n, Σx, Σx²)) and
// the sample sort composes six different collectives.
//
// Run with:
//
//	go run ./examples/mss
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/apps"
)

func main() {
	mach := apps.Machine{P: 16, Ts: 1000, Tw: 1}
	rng := rand.New(rand.NewSource(1999))

	// A noisy sequence with an embedded strong segment.
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = float64(rng.Intn(9) - 5)
	}
	for i := 100; i < 140; i++ {
		xs[i] = float64(rng.Intn(5) + 1)
	}

	got, res := apps.MSS(mach, xs)
	want := apps.SeqMSS(xs)
	if got != want {
		log.Fatalf("MSS mismatch: parallel %g, sequential %g", got, want)
	}
	fmt.Printf("maximum segment sum:   %g   (virtual time %.0f, one allreduce over 4-tuples)\n",
		got, res.Makespan)

	st, res2 := apps.Statistics(mach, xs)
	fmt.Printf("statistics:            n=%d mean=%.3f var=%.3f min=%g max=%g   (virtual time %.0f)\n",
		st.N, st.Mean, st.Variance, st.Min, st.Max, res2.Makespan)

	counts, _ := apps.Histogram(mach, xs, -5, 6, 11)
	fmt.Printf("histogram [-5,6) in 11 bins: %v\n", counts)

	blocks, res3 := apps.SampleSort(mach, xs)
	if !apps.IsGloballySorted(blocks) {
		log.Fatal("sample sort failed")
	}
	fmt.Printf("sample sort:           %d elements globally sorted across %d processors (virtual time %.0f)\n",
		len(xs), mach.P, res3.Makespan)
	fmt.Printf("                       block sizes: ")
	for _, b := range blocks {
		fmt.Printf("%d ", len(b))
	}
	fmt.Println()
}
