// Quickstart: the paper's program Example (§2.1), end to end.
//
// It builds the program map f ; scan(op1) ; reduce(op2) ; map g ; bcast,
// asks the engine which optimization rules apply on a start-up-dominated
// machine, applies the cost-guided rewriting (SR2-Reduction, as in
// Figure 3), verifies the equivalence on random inputs, and runs both
// versions on the virtual machine to show the measured saving.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/term"
)

func main() {
	// Local stages: f adds 1 to every block element, g doubles it.
	f := &term.Fn{Name: "f", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, algebra.Scalar(1))
	}}
	g := &term.Fn{Name: "g", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Mul.Apply(v, algebra.Scalar(2))
	}}

	// Program Example with op1 = *, op2 = + (so * distributes over +).
	example := core.NewProgram().
		Map(f).
		Scan(algebra.Mul).
		Reduce(algebra.Add).
		Map(g).
		Bcast()

	mach := core.Machine{Ts: 1000, Tw: 1, P: 16, M: 8}
	fmt.Printf("program:  %s\n", example)
	fmt.Printf("machine:  ts=%g tw=%g p=%d m=%d\n\n", mach.Ts, mach.Tw, mach.P, mach.M)

	// What could we do here?
	for _, a := range example.Applicable(mach) {
		fmt.Printf("applicable: %-14s estimate %8.0f -> %8.0f\n", a.Rule, a.CostBefore, a.CostAfter)
	}

	// Let the cost model decide.
	opt := example.Optimize(mach)
	fmt.Printf("\n%s\n", opt.Summary())
	fmt.Printf("optimized: %s\n\n", opt.Program)

	// Trust, but verify: both programs must agree on random inputs.
	if err := example.Verify(opt.Program, rules.VerifyConfig{Seed: 42, BlockWords: 8}); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: programs agree on random inputs")

	// And measure on the virtual machine.
	in := make([]algebra.Value, mach.P)
	for i := range in {
		b := make(algebra.Vec, mach.M)
		for j := range b {
			b[j] = float64((i+j)%3 + 1)
		}
		in[i] = b
	}
	outB, resB := example.Run(mach, in)
	outA, resA := opt.Program.Run(mach, in)
	if !algebra.EqualListsModuloUndef(outB, outA) {
		log.Fatalf("outputs differ: %v vs %v", outB, outA)
	}
	fmt.Printf("measured: %.0f -> %.0f (%.2fx faster)\n",
		resB.Makespan, resA.Makespan, resB.Makespan/resA.Makespan)
	fmt.Printf("output on processor 0: %v\n", outA[0])
}
