// Linear recurrences via collective operations over matrices — the
// setting of the paper's reference [20] (Wedler & Lengauer, "On linear
// list recursion in parallel").
//
// The k-th state of a linear recurrence x_{i+1} = A·x_i is A^k·x_0, and
// computing A^k on every processor k is literally
//
//	bcast ; scan(matmul)
//
// Matrix multiplication is associative but *not* commutative, so of the
// paper's rules exactly BS-Comcast applies (it needs associativity only),
// fusing the two collectives into a comcast. The example computes
// Fibonacci numbers — the recurrence with A = [[1,1],[1,0]] — on every
// processor, verifies the fused program against the unfused one and
// against the scalar recurrence, and reports the measured saving.
//
// Run with:
//
//	go run ./examples/linrec
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rules"
)

func main() {
	mach := core.Machine{Ts: 2000, Tw: 1, P: 32, M: 4}

	prog := core.NewProgram().Bcast().Scan(algebra.MatMul)
	fmt.Printf("program:   %s\n", prog)

	opt := prog.Optimize(mach)
	if len(opt.Applications) != 1 || opt.Applications[0].Rule != "BS-Comcast" {
		log.Fatalf("expected BS-Comcast, got %v", opt.Applications)
	}
	fmt.Printf("optimized: %s\n", opt.Program)
	fmt.Printf("estimate:  %.0f -> %.0f\n\n", opt.EstimateBefore, opt.EstimateAfter)

	cfg := rules.VerifyConfig{Seed: 21, Gen: func(rng *rand.Rand, n int) []algebra.Value {
		in := make([]algebra.Value, n)
		for i := range in {
			d := make([]float64, 4)
			for j := range d {
				d[j] = float64(rng.Intn(5) - 2)
			}
			in[i] = algebra.NewMat(2, 2, d...)
		}
		return in
	}}
	if err := prog.Verify(opt.Program, cfg); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	// Fibonacci: A^k = [[F(k+1), F(k)], [F(k), F(k-1)]].
	fib := algebra.NewMat(2, 2, 1, 1, 1, 0)
	in := make([]algebra.Value, mach.P)
	for i := range in {
		if i == 0 {
			in[i] = fib
		} else {
			in[i] = algebra.Undef{}
		}
	}
	outB, resB := prog.Run(mach, in)
	outA, resA := opt.Program.Run(mach, in)

	// Scalar reference recurrence.
	f0, f1 := 0.0, 1.0
	for k := 0; k < mach.P; k++ {
		// Processor k holds A^(k+1): entry (0,1) is F(k+1).
		f0, f1 = f1, f0+f1
		wantF := f0 // F(k+1)
		mb := outB[k].(algebra.Mat)
		ma := outA[k].(algebra.Mat)
		if mb.At(0, 1) != wantF || ma.At(0, 1) != wantF {
			log.Fatalf("processor %d: F(%d) = %g / %g, want %g",
				k, k+1, mb.At(0, 1), ma.At(0, 1), wantF)
		}
	}
	fmt.Printf("every processor k holds A^(k+1); F(1)..F(%d) verified\n", mach.P)
	last := outA[mach.P-1].(algebra.Mat)
	fmt.Printf("processor %d: A^%d = %v  (F(%d) = %g)\n",
		mach.P-1, mach.P, last, mach.P, last.At(0, 1))
	fmt.Printf("measured:  %.0f -> %.0f (%.2fx faster)\n",
		resB.Makespan, resA.Makespan, resB.Makespan/resA.Makespan)
}
