// Cross-program composition — the second source of optimization
// opportunities described in §2.1 and Figure 1.
//
// Program Example ends in a broadcast; program Next_Example begins with a
// scan followed by a reduction. Composed into one application, the seam
// exposes the three-stage pattern bcast ; scan(+) ; reduce(+), which rule
// BSR-Local collapses into a purely local computation — two collective
// operations vanish entirely, even though neither program contained an
// optimization opportunity by itself. A second composition shows the
// two-stage seam (bcast ; scan → BS-Comcast), and a third shows an
// intervening local stage blocking the fusion window.
//
// Run with:
//
//	go run ./examples/composition
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/term"
)

func main() {
	mach := core.Machine{Ts: 2000, Tw: 1, P: 16, M: 16}

	f := &term.Fn{Name: "f", Cost: 1, F: func(v algebra.Value) algebra.Value {
		return algebra.Add.Apply(v, algebra.Scalar(1))
	}}

	// Example: … ; allreduce(max) ; bcast. Next_Example: scan(+) ; reduce(+) ; …
	example := core.NewProgram().Map(f).AllReduce(algebra.Max).Bcast()
	next := core.NewProgram().Scan(algebra.Add).Reduce(algebra.Add)

	fmt.Printf("Example:      %s\n", example)
	fmt.Printf("Next_Example: %s\n", next)

	// Their composition exposes bcast ; scan ; reduce at the seam.
	combined := example.Then(next)
	fmt.Printf("composed:     %s\n\n", combined)

	opt := combined.Optimize(mach)
	for _, a := range opt.Applications {
		fmt.Printf("applied %s\n", a)
	}
	fmt.Printf("optimized:    %s\n", opt.Program)
	fmt.Printf("estimate:     %.0f -> %.0f (%.2fx)\n\n",
		opt.EstimateBefore, opt.EstimateAfter, opt.EstimateBefore/opt.EstimateAfter)

	sawBSR := false
	for _, a := range opt.Applications {
		if a.Rule == "BSR-Local" {
			sawBSR = true
		}
	}
	if !sawBSR {
		log.Fatalf("expected BSR-Local to fire at the program seam, got %v", opt.Applications)
	}

	if err := combined.Verify(opt.Program, rules.VerifyConfig{Seed: 11, BlockWords: 4, Pow2Only: true}); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: composition and optimized composition agree")

	// A two-stage seam: when Next_Example's reduction is preceded by a
	// data-dependent local stage, only bcast ; scan is fusable, and rule
	// BS-Comcast takes it.
	next2 := core.NewProgram().Scan(algebra.Add).Map(f).Reduce(algebra.Add)
	combined2 := example.Then(next2)
	opt2 := combined2.Optimize(mach)
	fmt.Printf("\nshorter seam: %s\n", combined2)
	for _, a := range opt2.Applications {
		fmt.Printf("applied %s\n", a)
	}
	fmt.Printf("optimized:    %s\n", opt2.Program)
	sawBS := false
	for _, a := range opt2.Applications {
		if a.Rule == "BS-Comcast" {
			sawBS = true
		}
	}
	if !sawBS {
		log.Fatalf("expected BS-Comcast on the shorter seam, got %v", opt2.Applications)
	}
	if err := combined2.Verify(opt2.Program, rules.VerifyConfig{Seed: 12, BlockWords: 4}); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: shorter-seam optimization agrees")

	// An intervening local stage right at the seam blocks every window:
	// nothing fuses, and that is the correct, conservative behavior.
	blocked := example.Then(core.NewProgram().Map(f).Scan(algebra.Add))
	opt3 := blocked.Optimize(mach)
	fmt.Printf("\nblocked seam: %s\n", blocked)
	fmt.Printf("applications: %d (an intervening map blocks the fusion window)\n", len(opt3.Applications))
}
