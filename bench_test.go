// Package repro's root benchmark harness regenerates the paper's
// evaluation artifacts as testing.B benchmarks — one benchmark family per
// table and figure — and adds the ablations called out in DESIGN.md.
//
// Wall-clock ns/op measures the host cost of simulating each program;
// the paper's metric is the *virtual* run time under the §4.1 cost model,
// reported as the custom metric "vtime" (virtual time units per run).
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algebra"
	"repro/internal/apps"
	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/machine"
	"repro/internal/rules"
	"repro/internal/term"
)

// parsytec approximates the paper's start-up-dominated Parsytec network.
var parsytec = core.Machine{Ts: 5000, Tw: 1}

func inputsFor(p, m int) []algebra.Value {
	in := make([]algebra.Value, p)
	for i := range in {
		b := make(algebra.Vec, m)
		for j := range b {
			b[j] = float64((i+j)%5 + 1)
		}
		in[i] = b
	}
	return in
}

func benchProgram(b *testing.B, prog core.Program, mach core.Machine) {
	in := inputsFor(mach.P, mach.M)
	var makespan float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res := prog.Run(mach, in)
		makespan = res.Makespan
	}
	b.ReportMetric(makespan, "vtime")
}

// BenchmarkTable1 regenerates Table 1: for every optimization rule, the
// left-hand side and the rewritten right-hand side run on the virtual
// machine; compare the two vtime metrics per rule to read the table.
func BenchmarkTable1(b *testing.B) {
	mach := parsytec
	mach.P = 32
	mach.M = 16
	for _, pat := range exper.Patterns() {
		r, ok := rules.ByName(pat.Rule)
		if !ok {
			b.Fatalf("no rule %s", pat.Rule)
		}
		eng := rules.NewEngine()
		eng.Rules = []rules.Rule{r}
		eng.Env.P = mach.P
		opt, apps := eng.Optimize(pat.LHS.Term())
		if len(apps) != 1 {
			b.Fatalf("rule %s did not apply", pat.Rule)
		}
		b.Run(pat.Rule+"/before", func(b *testing.B) {
			benchProgram(b, pat.LHS, mach)
		})
		b.Run(pat.Rule+"/after", func(b *testing.B) {
			benchProgram(b, core.FromTerm(opt), mach)
		})
	}
}

// comcastProgs are the three variants of Figures 7 and 8.
func comcastProgs() map[string]core.Program {
	ops := algebra.OpCompBS(algebra.Add)
	return map[string]core.Program{
		"bcast_scan":   core.NewProgram().Bcast().Scan(algebra.Add),
		"comcast":      core.FromTerm(term.Comcast{Ops: ops, CostOptimal: true}),
		"bcast_repeat": core.FromTerm(term.Comcast{Ops: ops}),
	}
}

// figureMachine is the machine for the Figure 7/8 benches. The paper's
// curves (bcast;repeat < comcast < bcast;scan) hold in the start-up-
// dominated regime m·tw < ts the Parsytec experiments ran in, so the
// start-up is scaled up to keep that relation at the paper's 32·10³-word
// blocks.
var figureMachine = core.Machine{Ts: 50000, Tw: 1}

// BenchmarkFigure7 regenerates Figure 7: the three comcast variants as
// the machine grows, at fixed block size 32·10³ words (as in the paper).
func BenchmarkFigure7(b *testing.B) {
	const blockWords = 32000
	for p := 4; p <= 64; p *= 2 {
		for name, prog := range comcastProgs() {
			mach := figureMachine
			mach.P = p
			mach.M = blockWords
			b.Run(fmt.Sprintf("p=%d/%s", p, name), func(b *testing.B) {
				benchProgram(b, prog, mach)
			})
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8: the same three variants on 64
// processors as the block size grows.
func BenchmarkFigure8(b *testing.B) {
	for _, m := range []int{5000, 15000, 25000, 35000} {
		for name, prog := range comcastProgs() {
			mach := figureMachine
			mach.P = 64
			mach.M = m
			b.Run(fmt.Sprintf("m=%d/%s", m, name), func(b *testing.B) {
				benchProgram(b, prog, mach)
			})
		}
	}
}

// BenchmarkFigure2 exercises the P1/P2 warm-up of Figure 2 as programs on
// the machine: the fused pair reduction against the plain reduction.
func BenchmarkFigure2(b *testing.B) {
	mach := parsytec
	mach.P = 16
	mach.M = 64
	opNew := algebra.OpNew(algebra.Add, algebra.Mul)
	b.Run("P1", func(b *testing.B) {
		benchProgram(b, core.NewProgram().AllReduce(algebra.Add), mach)
	})
	b.Run("P2", func(b *testing.B) {
		p2 := core.NewProgram().Map(term.PairFn).AllReduce(opNew).Map(term.FirstFn)
		benchProgram(b, p2, mach)
	})
}

// BenchmarkPolyEval regenerates the §5 case study timings.
func BenchmarkPolyEval(b *testing.B) {
	pe := exper.NewPolyEval(1, 32, 512)
	mach := parsytec
	mach.P = 32
	mach.M = 512
	in := make([]algebra.Value, 32)
	for i := range in {
		in[i] = pe.Points.Clone()
	}
	variants := map[string]core.Program{
		"PolyEval_1":      pe.Program1(),
		"PolyEval_2":      pe.Program2(),
		"PolyEval_3":      pe.Program3(),
		"comcast_optimal": pe.ProgramComcastOptimal(),
	}
	for name, prog := range variants {
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				_, res := prog.Run(mach, in)
				makespan = res.Makespan
			}
			b.ReportMetric(makespan, "vtime")
		})
	}
}

// BenchmarkOpSRSharing is the DESIGN.md ablation of op_sr's shared uu:
// four vs five elementary operations per combine, measured end to end on
// a balanced reduction.
func BenchmarkOpSRSharing(b *testing.B) {
	mach := parsytec
	mach.P = 32
	mach.M = 256
	for name, op := range map[string]*algebra.Op{
		"shared_uu":  algebra.OpSR(algebra.Add),
		"no_sharing": algebra.OpSRNoSharing(algebra.Add),
	} {
		prog := core.NewProgram().
			Map(term.PairFn).
			ReduceBalanced(op).
			Map(term.FirstFn)
		b.Run(name, func(b *testing.B) {
			benchProgram(b, prog, mach)
		})
	}
}

// BenchmarkCollectivesWallClock measures the host-side cost of the raw
// collectives (goroutines + channels), independent of virtual time: the
// practical overhead of the simulator itself.
func BenchmarkCollectivesWallClock(b *testing.B) {
	for _, p := range []int{8, 64} {
		vm := machine.New(p, machine.Params{Ts: 1, Tw: 1})
		in := inputsFor(p, 64)
		for name, body := range map[string]func(pr coll.Comm) algebra.Value{
			"bcast": func(pr coll.Comm) algebra.Value {
				return coll.Bcast(pr, 0, in[pr.Rank()])
			},
			"allreduce": func(pr coll.Comm) algebra.Value {
				return coll.AllReduce(pr, algebra.Add, in[pr.Rank()])
			},
			"scan": func(pr coll.Comm) algebra.Value {
				return coll.Scan(pr, algebra.Add, in[pr.Rank()])
			},
		} {
			b.Run(fmt.Sprintf("p=%d/%s", p, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vm.Run(func(pr *machine.Proc) { body(coll.World(pr)) })
				}
			})
		}
	}
}

// BenchmarkNativeCollectives measures the raw collectives on the native
// backend: here ns/op IS the metric — real channel transfers and real
// arithmetic, no cost model.
func BenchmarkNativeCollectives(b *testing.B) {
	for _, p := range []int{8, 64} {
		nm := backend.New(p)
		in := inputsFor(p, 64)
		for name, body := range map[string]func(pr coll.Comm) algebra.Value{
			"bcast": func(pr coll.Comm) algebra.Value {
				return coll.Bcast(pr, 0, in[pr.Rank()])
			},
			"allreduce": func(pr coll.Comm) algebra.Value {
				return coll.AllReduce(pr, algebra.Add, in[pr.Rank()])
			},
			"scan": func(pr coll.Comm) algebra.Value {
				return coll.Scan(pr, algebra.Add, in[pr.Rank()])
			},
		} {
			b.Run(fmt.Sprintf("p=%d/%s", p, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					nm.Run(func(pr *backend.Proc) { body(pr) })
				}
			})
		}
	}
}

// BenchmarkNativeFusion measures representative rules' unfused and fused
// forms on the native backend at a start-up-dominated small block and a
// compute-dominated large block. Compare before/after ns/op per rule to
// see the real crossover the cost model only predicts.
func BenchmarkNativeFusion(b *testing.B) {
	const p = 8
	for _, pat := range exper.Patterns() {
		switch pat.Rule {
		case "SS2-Scan", "SR-Reduction", "BR-Local", "CR-AllLocal":
		default:
			continue
		}
		r, ok := rules.ByName(pat.Rule)
		if !ok {
			b.Fatalf("no rule %s", pat.Rule)
		}
		eng := rules.NewEngine()
		eng.Rules = []rules.Rule{r}
		eng.Env.P = p
		opt, apps := eng.Optimize(pat.LHS.Term())
		if len(apps) != 1 {
			b.Fatalf("rule %s did not apply", pat.Rule)
		}
		rhs := core.FromTerm(opt)
		for _, m := range []int{1, 4096} {
			in := inputsFor(p, m)
			for name, prog := range map[string]core.Program{"before": pat.LHS, "after": rhs} {
				b.Run(fmt.Sprintf("%s/m=%d/%s", pat.Rule, m, name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						prog.RunNative(p, in)
					}
				})
			}
		}
	}
}

// TestEmitBenchNative exercises the BENCH_native.json emitter end to end
// on a reduced suite. Set BENCH_NATIVE_OUT=<path> to write the full
// default suite there instead of a temporary file (how the committed
// BENCH_native.json is regenerated; `go run ./cmd/collbench -benchjson`
// is the command-line equivalent).
func TestEmitBenchNative(t *testing.T) {
	cfg := exper.NativeFusionConfig{P: 4, Ms: []int{1, 256}, Reps: 2,
		Rules: []string{"SS2-Scan", "SR-Reduction"}}
	path := filepath.Join(t.TempDir(), "BENCH_native.json")
	if out := os.Getenv("BENCH_NATIVE_OUT"); out != "" {
		cfg = exper.DefaultNativeFusionConfig()
		path = out
	}
	recs, err := exper.NativeFusion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := exper.WriteBenchJSON(path, recs); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("emitter wrote nothing: %v", err)
	}
}

// BenchmarkBcastAlgorithms is the DESIGN.md ablation of broadcast
// implementations: the binomial tree the paper's estimates assume, the
// flat linear tree, and van de Geijn's scatter/allgather ([17]) — at a
// start-up-dominated small block and a bandwidth-dominated large block.
func BenchmarkBcastAlgorithms(b *testing.B) {
	cases := []struct {
		name   string
		params machine.Params
		words  int
	}{
		{"startup_small", machine.Params{Ts: 1000, Tw: 1}, 64},
		{"bandwidth_large", machine.Params{Ts: 10, Tw: 4}, 1 << 16},
	}
	for _, cse := range cases {
		for _, alg := range []coll.BcastAlg{
			coll.BcastBinomial, coll.BcastLinear, coll.BcastScatterAllGather, coll.BcastPipelined,
		} {
			vm := machine.New(16, cse.params)
			b.Run(cse.name+"/"+alg.String(), func(b *testing.B) {
				var makespan float64
				for i := 0; i < b.N; i++ {
					res := vm.Run(func(pr *machine.Proc) {
						c := coll.World(pr)
						x := algebra.Value(algebra.Undef{})
						if c.Rank() == 0 {
							x = make(algebra.Vec, cse.words)
						}
						coll.BcastWith(c, 0, x, alg)
					})
					makespan = res.Makespan
				}
				b.ReportMetric(makespan, "vtime")
			})
		}
	}
}

// BenchmarkClusterCollectives compares flat and hierarchical collectives
// on a cluster of SMPs under cyclic (adversarial) placement, where the
// placement-aware hierarchy pays only ceil(log nodes) expensive
// start-ups.
func BenchmarkClusterCollectives(b *testing.B) {
	tp := cluster.Topology{
		Nodes: 6, Cores: 8,
		Intra:     machine.Params{Ts: 1, Tw: 1},
		Inter:     machine.Params{Ts: 10000, Tw: 1},
		Placement: cluster.Cyclic,
	}
	runBody := func(b *testing.B, body func(p *machine.Proc, cs cluster.Comms)) {
		vm := tp.Machine()
		var makespan float64
		for i := 0; i < b.N; i++ {
			res := vm.Run(func(p *machine.Proc) {
				body(p, cluster.CommsFor(tp, p))
			})
			makespan = res.Makespan
		}
		b.ReportMetric(makespan, "vtime")
	}
	b.Run("allreduce/flat", func(b *testing.B) {
		runBody(b, func(p *machine.Proc, cs cluster.Comms) {
			coll.AllReduce(cs.World, algebra.Add, algebra.Scalar(1))
		})
	})
	b.Run("allreduce/hierarchical", func(b *testing.B) {
		runBody(b, func(p *machine.Proc, cs cluster.Comms) {
			cluster.AllReduce(cs, algebra.Add, algebra.Scalar(1))
		})
	})
	b.Run("bcast/flat", func(b *testing.B) {
		runBody(b, func(p *machine.Proc, cs cluster.Comms) {
			coll.Bcast(cs.World, 0, algebra.Scalar(1))
		})
	})
	b.Run("bcast/hierarchical", func(b *testing.B) {
		runBody(b, func(p *machine.Proc, cs cluster.Comms) {
			cluster.Bcast(cs, algebra.Scalar(1))
		})
	})
}

// BenchmarkApps measures the collective-only applications of
// internal/apps end to end.
func BenchmarkApps(b *testing.B) {
	mach := apps.Machine{P: 16, Ts: 1000, Tw: 1}
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64((i*2654435761)%101) - 50
	}
	b.Run("mss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			apps.MSS(mach, xs)
		}
	})
	b.Run("statistics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			apps.Statistics(mach, xs)
		}
	})
	b.Run("samplesort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			apps.SampleSort(mach, xs)
		}
	})
	// The sparse workloads: a 2D torus stencil over halo exchanges, a
	// segmented scan over ragged blocks delivered by allgatherv, and a
	// graph-degree histogram over reduce_scatterv.
	grid := make([][]float64, 64)
	for i := range grid {
		grid[i] = xs[i*64 : (i+1)*64]
	}
	b.Run("stencil", func(b *testing.B) {
		var vtime float64
		for i := 0; i < b.N; i++ {
			_, res := apps.Stencil2D(mach, grid, 16, 1, 4)
			vtime = res.Makespan
		}
		b.ReportMetric(vtime, "vtime")
	})
	counts := make([]int, mach.P)
	left := len(xs)
	for i := 0; i < mach.P-1; i++ {
		share := len(xs) / mach.P * ((i * 3) % 4) / 2
		counts[i] = share
		left -= share
	}
	counts[mach.P-1] = left
	flags := make([]bool, len(xs))
	for i := range flags {
		flags[i] = i%7 == 0
	}
	b.Run("raggedscan", func(b *testing.B) {
		var vtime float64
		for i := 0; i < b.N; i++ {
			_, res := apps.RaggedSegmentedScan(mach, counts, flags, xs)
			vtime = res.Makespan
		}
		b.ReportMetric(vtime, "vtime")
	})
	const nv = 512
	edges := make([][2]int, len(xs))
	for i := range edges {
		edges[i] = [2]int{(i * 2654435761) % nv, (i*40503 + 7) % nv}
	}
	vcounts := make([]int, mach.P)
	vleft := nv
	for i := 0; i < mach.P-1; i++ {
		share := nv / mach.P * ((i * 3) % 4) / 2
		vcounts[i] = share
		vleft -= share
	}
	vcounts[mach.P-1] = vleft
	b.Run("degreehist", func(b *testing.B) {
		var vtime float64
		for i := 0; i < b.N; i++ {
			_, res := apps.DegreeHistogram(mach, nv, edges, vcounts, 8)
			vtime = res.Makespan
		}
		b.ReportMetric(vtime, "vtime")
	})
}

// BenchmarkAllReduceAlgorithms compares the butterfly all-reduce (the
// paper's cost model) against the bandwidth-optimal ring
// (reduce-scatter + allgather) in both parameter regimes.
func BenchmarkAllReduceAlgorithms(b *testing.B) {
	cases := []struct {
		name   string
		params machine.Params
		words  int
	}{
		{"startup_small", machine.Params{Ts: 10000, Tw: 1}, 64},
		{"bandwidth_large", machine.Params{Ts: 10, Tw: 4}, 1 << 14},
	}
	for _, cse := range cases {
		for _, alg := range []coll.AllReduceAlg{coll.AllReduceButterfly, coll.AllReduceRingAlg} {
			vm := machine.New(16, cse.params)
			b.Run(cse.name+"/"+alg.String(), func(b *testing.B) {
				var makespan float64
				for i := 0; i < b.N; i++ {
					res := vm.Run(func(pr *machine.Proc) {
						c := coll.World(pr)
						coll.AllReduceWith(c, algebra.Add, make(algebra.Vec, cse.words), alg)
					})
					makespan = res.Makespan
				}
				b.ReportMetric(makespan, "vtime")
			})
		}
	}
}

// BenchmarkRewriteEngine measures optimizer throughput on a program with
// several fusable windows.
func BenchmarkRewriteEngine(b *testing.B) {
	prog := core.NewProgram().
		Bcast().Scan(algebra.Add).Scan(algebra.Add).
		Scan(algebra.Mul).Reduce(algebra.Add).
		Bcast().AllReduce(algebra.Add)
	mach := core.Machine{Ts: 5000, Tw: 1, P: 64, M: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := prog.Optimize(mach)
		if len(opt.Applications) == 0 {
			b.Fatal("no applications")
		}
	}
}

// BenchmarkSemanticEval measures the pure functional semantics, the
// reference the verifier uses.
func BenchmarkSemanticEval(b *testing.B) {
	t := term.Seq{
		term.Bcast{},
		term.Scan{Op: algebra.Mul},
		term.Scan{Op: algebra.Add},
		term.Reduce{Op: algebra.Add, All: true},
	}
	in := inputsFor(64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		term.Eval(t, in)
	}
}

// BenchmarkKernelAllocs is the allocation table of the operator kernels:
// run with `go test -run=NONE -bench=KernelAllocs -benchmem` and read the
// allocs/op column. The in-place kernels (ApplyInto and the flat-tuple
// paths) must report 0 allocs/op — the regression tests in
// internal/algebra pin them there with testing.AllocsPerRun — while the
// boxed reference path shows what every combine used to cost.
func BenchmarkKernelAllocs(b *testing.B) {
	const m = 1024
	mkVec := func(seed int) algebra.Vec {
		v := make(algebra.Vec, m)
		for i := range v {
			v[i] = float64((seed+i)%7 + 1)
		}
		return v
	}
	flatOf := func(w int) *algebra.FlatTuple {
		ft := algebra.NewFlatTuple(w, m)
		for i := 0; i < w; i++ {
			copy(ft.Comp(i), mkVec(i))
		}
		return ft
	}

	b.Run("scalar/ApplyFloat", func(b *testing.B) {
		b.ReportAllocs()
		x, y, s := 3.0, 4.0, 0.0
		for i := 0; i < b.N; i++ {
			s = algebra.Add.ApplyFloat(s, x+y)
		}
		_ = s
	})
	b.Run("vec/Apply_reference", func(b *testing.B) {
		b.ReportAllocs()
		x, y := algebra.Value(mkVec(1)), algebra.Value(mkVec(2))
		for i := 0; i < b.N; i++ {
			algebra.Add.Apply(x, y)
		}
	})
	b.Run("vec/ApplyInto", func(b *testing.B) {
		b.ReportAllocs()
		x, y := algebra.Value(mkVec(1)), algebra.Value(mkVec(2))
		dst := algebra.Value(make(algebra.Vec, m))
		for i := 0; i < b.N; i++ {
			dst = algebra.Add.ApplyInto(dst, x, y)
		}
	})
	b.Run("flat/op_sr2_Apply_reference", func(b *testing.B) {
		b.ReportAllocs()
		op := algebra.OpSR2(algebra.Mul, algebra.Add)
		x := algebra.Value(algebra.Tuple{mkVec(1), mkVec(2)})
		y := algebra.Value(algebra.Tuple{mkVec(3), mkVec(4)})
		for i := 0; i < b.N; i++ {
			op.Apply(x, y)
		}
	})
	b.Run("flat/op_sr2_ApplyInto", func(b *testing.B) {
		b.ReportAllocs()
		op := algebra.OpSR2(algebra.Mul, algebra.Add)
		x, y := algebra.Value(flatOf(2)), algebra.Value(flatOf(2))
		dst := algebra.Value(algebra.NewFlatTuple(2, m))
		for i := 0; i < b.N; i++ {
			dst = op.ApplyInto(dst, x, y)
		}
	})
	b.Run("flat/op_ss_lo_hi", func(b *testing.B) {
		b.ReportAllocs()
		op := algebra.OpSS(algebra.Add)
		own, from := flatOf(4), flatOf(op.ShipWidth)
		ship := algebra.NewFlatTuple(op.ShipWidth, m)
		for i := 0; i < b.N; i++ {
			op.FlatShip(ship, own)
			op.FlatLo(own, own, ship)
			op.FlatHi(own, own, from)
		}
	})
	b.Run("flat/op_comp_bss_repeat", func(b *testing.B) {
		b.ReportAllocs()
		ops := algebra.OpCompBSS(algebra.Add)
		w := flatOf(ops.Arity)
		for i := 0; i < b.N; i++ {
			ops.RepeatInto(6, w)
		}
	})
}
